"""Preloading executor: the baselines' cold-start init + execute pipeline.

Implements the strategy every existing framework uses (paper §1): load the
whole model disk -> unified memory, transform every weight into texture
memory with dedicated kernels, then run inference with all weights resident.
Latency and memory come out of the shared simulator mechanically; the
framework profile only sets throughput/copy characteristics.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.graph.dag import Graph
from repro.gpusim.device import DeviceProfile
from repro.gpusim.engine import Simulation
from repro.gpusim import pricing
from repro.gpusim.kernels import FlashAttentionKernel
from repro.gpusim.texture import texture_bytes, winograd_expansion
from repro.runtime.frameworks import FrameworkProfile
from repro.runtime.scenario import Scenario, resolve_scenario


class ModelNotSupportedError(Exception):
    """The framework cannot run this model (Table 7 '-' entries)."""


class PreloadExecutor:
    """Cold-start preloading runtime parameterised by a framework profile."""

    def __init__(self, profile: FrameworkProfile, device: DeviceProfile) -> None:
        self.profile = profile
        self.device = device

    def run(
        self,
        graph: Graph,
        *,
        scenario: Optional[Scenario] = None,
        iterations: Optional[int] = None,
        check_support: bool = True,
        raise_on_oom: bool = False,
        use_cost_tables: Optional[bool] = None,
    ):
        """Simulate init + the workload described by ``scenario``.

        ``Scenario.prefill(n)`` (the historical ``iterations=`` shim) runs
        ``n`` full passes with every weight resident.
        ``Scenario.decode(...)`` runs autoregressive generation the way
        every preloading framework does it: the *entire* KV cache stays in
        unified memory and grows without bound — faster attention reads than
        FlashMem's disk-streamed tiles, but linear memory growth that OOMs
        long contexts (the Table 1 story, decode edition).

        Returns a :class:`~repro.gpusim.timeline.RunResult`; ``result.oom``
        situations set ``details['oom'] = 1`` (and raise when requested).
        ``use_cost_tables`` overrides :data:`pricing.COST_TABLES_DEFAULT`;
        the vectorized table prices exactly like the scalar per-node calls.
        """
        scenario = resolve_scenario(scenario, iterations=iterations)
        iterations = scenario.iterations
        wall0 = time.perf_counter()
        stats = pricing.STATS
        stats_before = stats.snapshot()
        if use_cost_tables is None:
            use_cost_tables = pricing.COST_TABLES_DEFAULT
        profile, device = self.profile, self.device
        if check_support and not profile.supports(graph.name):
            raise ModelNotSupportedError(f"{profile.name} does not support {graph.name}")
        graph.freeze()
        sim = Simulation(device, model=graph.name, runtime=profile.name)
        io, gpu = sim.queues.io, sim.queues.gpu

        # ---- GPU context / program setup -------------------------------
        sim.alloc_um("process_baseline", int(profile.baseline_mb * 1e6), 0.0)
        setup = gpu.submit("gpu_setup", device.gpu_setup_ms * profile.setup_ms_factor, kind="setup")
        sim.phases.setup = setup.duration_ms

        # ---- Init: load + transform every weight ------------------------
        # The serialized model file stays mapped while it is parsed and
        # copied out (freed once the last tensor has loaded) — this is the
        # init-time transient that makes Table 1's peaks ~3x the weights and
        # OOMs big models on 6-8 GB devices (Figure 10).
        sim.alloc_um("model_file_buffer", graph.total_weight_bytes, setup.start_ms)
        staging_factor = 2 if profile.fp32_staging else 1
        load_bw = device.disk_bw * profile.load_bw_factor
        transform_bw = device.tm_upload_bw * profile.transform_bw_factor
        for weight, node in graph.weights():
            um_bytes = weight.nbytes * staging_factor
            load = io.submit(
                f"load:{weight.name}",
                device.disk_latency_ms + weight.nbytes / load_bw,
                kind="load",
            )
            sim.alloc_um(weight.name, um_bytes, load.end_ms)
            if profile.uses_texture:
                tex_bytes = texture_bytes(weight.tensor)
                expansion = winograd_expansion(node.kind, int(node.spec.attrs.get("kernel", 0)))
                transform_time = (
                    device.kernel_launch_ms
                    + profile.per_tensor_transform_ms
                    + weight.nbytes / transform_bw
                )
                xform = gpu.submit(
                    f"transform:{weight.name}",
                    transform_time,
                    not_before=load.end_ms,
                    kind="transform",
                )
                if expansion > 1.0:
                    # Winograd scratch lives only during the transform.
                    scratch = int(weight.nbytes * (expansion - 1.0))
                    sim.alloc_um(f"{weight.name}.winograd", scratch, xform.start_ms)
                    sim.free_um(f"{weight.name}.winograd", xform.end_ms)
                sim.alloc_tm(weight.name + ".tex", tex_bytes, xform.end_ms)
                if not profile.keep_um_copy and not profile.free_um_at_init_end:
                    sim.free_um(weight.name, xform.end_ms)
        # The mapped file coexists with the last tensor copied out of it for
        # an instant — a genuine double-residency transient (Table 1's ~3x
        # init peaks), not an exchange, so the free integrates after the
        # same-timestamp allocation.
        sim.free_um("model_file_buffer", io.free_at, after_allocs=True)
        init_end = sim.queues.makespan_ms
        if profile.free_um_at_init_end and not profile.keep_um_copy:
            for weight, _node in graph.weights():
                if sim.um.contains(weight.name):
                    sim.free_um(weight.name, init_end)
        sim.phases.load = io.busy_time_ms(kind="load")
        sim.phases.transform = gpu.busy_time_ms(kind="transform")

        # ---- Runtime arena (graph runtime, workspaces, activations) -----
        overhead = int(
            graph.total_weight_bytes * profile.mem_overhead_factor + profile.arena_fixed_mb * 1e6
        )
        activations = graph.peak_activation_bytes()
        if profile.fp32_staging:
            activations *= 2
        arena_time = setup.end_ms if profile.arena_at_start else init_end
        sim.alloc_um("runtime_arena", overhead + activations, arena_time)

        # ---- Execute ----------------------------------------------------
        from repro.graph.ops import OpKind

        node_list = list(graph.nodes())

        if scenario.is_decode:
            # Preloading decode: the whole KV cache is unified-memory
            # resident (no texture staging, no spilling).  Attention reads
            # every cached tile from UM at the framework's kernel
            # efficiency; the cache grows by one row pair per cache per
            # token, unboundedly — the linear-memory failure mode FlashMem's
            # residency cap is designed around.
            caches = {c.name: c for c in graph.kv_cache_specs()}
            flash_pos = []
            flash_kernels = []
            append_delta = {}
            for pos, node in enumerate(node_list):
                if node.kind is OpKind.FLASH_ATTENTION:
                    flash_pos.append(pos)
                    flash_kernels.append(FlashAttentionKernel.from_spec(node.spec))
                elif node.kind is OpKind.KV_APPEND:
                    append_delta[pos] = caches[node.spec.attrs["kv_cache"]].token_bytes
            if not flash_pos:
                raise ValueError(
                    f"decode scenario requires a decode-phase graph; "
                    f"{graph.name!r} has no tiled attention nodes"
                )
            tiles = {k.tile_tokens for k in flash_kernels}
            if len(tiles) != 1:
                raise ValueError(f"mixed attention tile sizes in {graph.name!r}: {sorted(tiles)}")
            tile = tiles.pop()
            context_len, tokens = scenario.context_len, scenario.tokens
            token_bytes = sum(c.token_bytes for c in caches.values())
            deltas_append = sim.raw_deltas().append
            if context_len > 0:
                deltas_append((init_end, context_len * token_bytes, 0))

            eff = profile.exec_efficiency
            conv_eff = profile.conv_exec_efficiency
            base_durs = None
            if use_cost_tables:
                rows = graph._frozen_aggregate(
                    ("pricing-rows", conv_eff, eff),
                    lambda: tuple(
                        pricing.spec_row(
                            node.spec,
                            efficiency=(
                                conv_eff
                                if node.kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D)
                                else eff
                            ),
                        )
                        for node in node_list
                    ),
                )
                base_durs = pricing.kernel_time_table(device, rows).tolist()

            exec_time = 0.0
            submit_fast = gpu.submit_fast
            fl = {}
            prev_tiles = -1
            for t in range(tokens):
                kv = context_len + t + 1
                n_tiles = -(-kv // tile)
                if n_tiles != prev_tiles:
                    # Per-token cost only changes when the cache crosses a
                    # tile boundary (all tiles are priced full).
                    prev_tiles = n_tiles
                    if use_cost_tables:
                        frows = tuple(
                            pricing.flash_row(
                                k, kv, resident_tiles=None, texture=False, efficiency=eff
                            )
                            for k in flash_kernels
                        )
                        fl = dict(
                            zip(flash_pos, pricing.flash_attention_time_table(device, frows).tolist())
                        )
                    else:
                        fl = dict(
                            zip(
                                flash_pos,
                                (
                                    k.time_ms(
                                        device, kv, resident_tiles=None, texture=False, efficiency=eff
                                    )
                                    for k in flash_kernels
                                ),
                            )
                        )
                for pos, node in enumerate(node_list):
                    fdur = fl.get(pos)
                    if fdur is not None:
                        duration = fdur
                    elif base_durs is not None:
                        duration = base_durs[pos]
                    else:
                        duration = sim.cost.base_time_ms(
                            node.spec,
                            efficiency=(
                                conv_eff
                                if node.kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D)
                                else eff
                            ),
                        )
                    start, end = submit_fast(f"t{t}:exec:{node.name}", duration, 0.0, "compute")
                    exec_time += end - start
                    kvd = append_delta.get(pos)
                    if kvd is not None:
                        deltas_append((end, kvd, 0))
            sim.phases.execute = exec_time
            end = sim.queues.makespan_ms
            total_kv = (context_len + tokens) * token_bytes
            if total_kv:
                deltas_append((end, -total_kv, 0))
            sim.free_all(end)
            pricing_delta = stats.delta_since(stats_before)
            wall = time.perf_counter() - wall0
            stats.runs += 1
            stats.sim_s += wall
            decode_ms = end - init_end
            details = {
                "tokens": float(tokens),
                "context_len": float(context_len),
                "init_ms": init_end,
                "decode_ms": decode_ms,
                "ms_per_token": decode_ms / tokens,
                "kv_bytes": float(total_kv),
                "sim_s": wall,
                "pricing_hits": float(pricing_delta["table_hits"]),
                "pricing_misses": float(pricing_delta["table_misses"]),
            }
            if sim.oom:
                details["oom"] = 1.0
                if raise_on_oom:
                    from repro.gpusim.memory import OutOfMemoryError

                    raise OutOfMemoryError(
                        0, sim.build_timeline().peak_bytes, device.ram_budget_bytes
                    )
            return sim.finish(details=details)

        durations = None
        if use_cost_tables:
            conv_eff = profile.conv_exec_efficiency
            base_eff = profile.exec_efficiency
            # Pure function of the frozen graph and the profile efficiencies,
            # so the rows are memoized on the graph across runs.
            rows = graph._frozen_aggregate(
                ("pricing-rows", conv_eff, base_eff),
                lambda: tuple(
                    pricing.spec_row(
                        node.spec,
                        efficiency=(
                            conv_eff
                            if node.kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D)
                            else base_eff
                        ),
                    )
                    for node in node_list
                ),
            )
            durations = pricing.kernel_time_table(device, rows).tolist()

        exec_time = 0.0
        submit_fast = gpu.submit_fast
        for it in range(iterations):
            if durations is not None:
                for node, duration in zip(node_list, durations):
                    start, end = submit_fast(f"exec{it}:{node.name}", duration, 0.0, "compute")
                    exec_time += end - start
            else:
                for node in node_list:
                    eff = (
                        profile.conv_exec_efficiency
                        if node.kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D)
                        else profile.exec_efficiency
                    )
                    start, end = submit_fast(
                        f"exec{it}:{node.name}",
                        sim.cost.base_time_ms(node.spec, efficiency=eff),
                        0.0,
                        "compute",
                    )
                    exec_time += end - start
        sim.phases.execute = exec_time

        # ---- Teardown ----------------------------------------------------
        end = sim.queues.makespan_ms
        sim.free_all(end)
        pricing_delta = stats.delta_since(stats_before)
        wall = time.perf_counter() - wall0
        stats.runs += 1
        stats.sim_s += wall
        details = {
            "iterations": float(iterations),
            "init_ms": init_end,
            "exec_per_iter_ms": exec_time / max(1, iterations),
            "sim_s": wall,
            "pricing_hits": float(pricing_delta["table_hits"]),
            "pricing_misses": float(pricing_delta["table_misses"]),
        }
        if sim.oom:
            details["oom"] = 1.0
            if raise_on_oom:
                from repro.gpusim.memory import OutOfMemoryError

                raise OutOfMemoryError(0, sim.build_timeline().peak_bytes, device.ram_budget_bytes)
        return sim.finish(details=details)
