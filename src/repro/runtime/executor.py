"""FlashMem streaming executor: runs an overlap plan on the simulator.

The integrated init+execute pipeline of the paper:

1. GPU setup, then the preloaded set W loads and transforms up front
   (FlashMem's own data-loading kernels use the fast vectorised path).
2. Layer-by-layer execution: disk loads are issued when the GPU reaches each
   weight's ``z_w`` layer; rewritten kernels stream their assigned chunks
   UM -> TM while computing; convolution weights get dedicated Winograd
   transforms at their consumers (non-overlappable, with scratch memory).
3. A kernel whose staged bytes have not arrived **stalls** until the IO
   queue delivers them — late loads cost latency mechanically, which is
   exactly the trade-off the OPG objective balances.

Memory lifetimes: a streamed weight's UM copy lives from disk-load
completion until its last transform; its texture copy lives until its
consumer finishes.  Preloaded weights stay in texture memory for the whole
run.  This is where FlashMem's memory savings come from — they are
*measured* off the timeline, not asserted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.dag import Graph
from repro.gpusim.device import DeviceProfile
from repro.gpusim.engine import Simulation
from repro.gpusim.texture import texture_bytes, winograd_expansion
from repro.kernels.codegen import ExecStyle, KernelBundle
from repro.kernels.rewriter import KernelRewriter
from repro.opg.plan import OverlapPlan

#: Dedicated Winograd transforms run below the raw upload bandwidth
#: (gather/scatter access pattern).
WINOGRAD_BW_FACTOR = 0.5

#: Resident process baseline (runtime code, GPU driver arenas), MB.
FLASHMEM_BASELINE_MB = 80.0

#: Dedicated (non-embedded) chunk-copy kernels run strided, well below the
#: vectorised in-kernel path — what kernel rewriting buys back (Figure 7).
DEDICATED_COPY_BW_FACTOR = 0.35


class FlashMemExecutor:
    """Plan-driven streaming runtime (the paper's integrated pipeline).

    ``rewriting=False`` disables §4.4's kernel rewriting: the plan's chunk
    transforms run as *dedicated* data-loading kernels interleaved on the
    GPU queue instead of riding inside rewritten compute kernels — the
    OPG-only ablation of Figure 7.
    """

    def __init__(
        self,
        device: DeviceProfile,
        *,
        style: ExecStyle = ExecStyle.PIPELINED,
        rewriting: bool = True,
    ) -> None:
        self.device = device
        self.style = style if rewriting else ExecStyle.RESIDENT
        self.rewriting = rewriting

    def run(
        self,
        graph: Graph,
        plan: OverlapPlan,
        bundle: Optional[KernelBundle] = None,
        *,
        iterations: int = 1,
        runtime_name: str = "FlashMem",
    ):
        """Simulate ``iterations`` streamed inference passes.

        Each pass re-streams the non-preloaded weights (FlashMem frees them
        after use), which is why a warm-started preloader eventually wins on
        many consecutive same-model inferences (paper §5.2).
        """
        device = self.device
        graph.freeze()
        missing = [w.name for w, _ in graph.weights() if w.name not in plan.schedules]
        if missing:
            raise ValueError(
                f"plan for {plan.model!r} does not cover {len(missing)} weights "
                f"of {graph.name!r} (first: {missing[0]!r}) — was it solved for "
                "a different graph?"
            )
        if bundle is None:
            bundle = KernelRewriter(style=self.style).rewrite_graph(graph, plan)
        sim = Simulation(device, model=graph.name, runtime=runtime_name)
        io, gpu = sim.queues.io, sim.queues.gpu
        weights_by_name = {w.name: (w, node) for w, node in graph.weights()}

        sim.alloc_um("process_baseline", int(FLASHMEM_BASELINE_MB * 1e6), 0.0)
        setup = gpu.submit("gpu_setup", device.gpu_setup_ms, kind="setup")
        sim.phases.setup = setup.duration_ms

        # ---- Preload W --------------------------------------------------
        for name in plan.preloaded_weights:
            weight, node = weights_by_name[name]
            load = io.submit(
                f"preload:{name}", device.disk_latency_ms + weight.nbytes / device.disk_bw, kind="load"
            )
            sim.alloc_um(name, weight.nbytes, load.end_ms)
            expansion = winograd_expansion(node.kind, int(node.spec.attrs.get("kernel", 0)))
            bw = device.tm_upload_bw * (WINOGRAD_BW_FACTOR if expansion > 1.0 else 1.0)
            xform = gpu.submit(
                f"transform:{name}",
                device.kernel_launch_ms + weight.nbytes / bw,
                not_before=load.end_ms,
                kind="transform",
            )
            if expansion > 1.0:
                sim.alloc_um(f"{name}.winograd", int(weight.nbytes * (expansion - 1.0)), xform.start_ms)
                sim.free_um(f"{name}.winograd", xform.end_ms)
            sim.alloc_tm(name + ".tex", texture_bytes(weight.tensor), xform.end_ms)
            sim.free_um(name, xform.end_ms)
        sim.phases.load = io.busy_time_ms(kind="load")
        sim.phases.transform = gpu.busy_time_ms(kind="transform")

        preload_end_ms = sim.queues.makespan_ms
        # Activation workspace for the whole run.
        sim.alloc_um("activations", graph.peak_activation_bytes(), preload_end_ms)

        # Index streamed weights by their load layer, and their transform
        # segments (byte-exact) by host layer.
        loads_by_layer: Dict[int, List[str]] = {}
        segments_by_layer: Dict[int, List[tuple]] = {}
        for name, sched in plan.schedules.items():
            if sched.preloaded:
                continue
            loads_by_layer.setdefault(sched.load_layer, []).append(name)
            for seg in sched.segments():
                segments_by_layer.setdefault(seg.layer, []).append(
                    (name, seg.end_offset - seg.start_offset)
                )

        exec_total = 0.0
        stall_total = 0.0
        for it in range(iterations):
            um_ready: Dict[str, float] = {}
            transformed: Dict[str, int] = {}
            for node in graph.nodes():
                idx = node.index
                tag = f"i{it}:" if iterations > 1 else ""
                gpu_now = gpu.free_at
                # 1) Issue disk loads whose z_w is this layer.  Dedicated
                #    conv weights keep their cached texture after the first
                #    pass, so they are neither reloaded nor re-transformed.
                for name in loads_by_layer.get(idx, []):
                    if it > 0 and plan.schedules[name].dedicated_transform:
                        continue
                    weight, _ = weights_by_name[name]
                    load = io.submit(
                        f"{tag}load:{name}",
                        device.disk_latency_ms + weight.nbytes / device.disk_bw,
                        not_before=gpu_now,
                        kind="load",
                    )
                    um_ready[name] = load.end_ms
                    sim.alloc_um(f"{tag}{name}", weight.nbytes, load.end_ms)

                # 2) Dedicated Winograd transforms for conv weights used here
                #    (first iteration only — the transformed texture persists).
                for weight_spec in node.weights:
                    sched = plan.schedules.get(weight_spec.name)
                    if sched is None or not sched.dedicated_transform or it > 0:
                        continue
                    weight, wnode = weights_by_name[weight_spec.name]
                    expansion = winograd_expansion(wnode.kind, int(wnode.spec.attrs.get("kernel", 0)))
                    xform = gpu.submit(
                        f"{tag}winograd:{weight_spec.name}",
                        device.kernel_launch_ms
                        + weight.nbytes / (device.tm_upload_bw * WINOGRAD_BW_FACTOR),
                        not_before=um_ready.get(weight_spec.name, 0.0),
                        kind="transform",
                    )
                    if expansion > 1.0:
                        scratch = int(weight.nbytes * (expansion - 1.0))
                        sim.alloc_um(f"{tag}{weight_spec.name}.winograd", scratch, xform.start_ms)
                        sim.free_um(f"{tag}{weight_spec.name}.winograd", xform.end_ms)
                    sim.alloc_tm(f"{tag}{weight_spec.name}.tex", texture_bytes(weight.tensor), xform.end_ms)
                    sim.free_um(f"{tag}{weight_spec.name}", xform.end_ms)

                # 3) The layer's transform segments.
                segments = segments_by_layer.get(idx, [])
                not_before = 0.0
                for seg_weight, _nbytes in segments:
                    not_before = max(not_before, um_ready.get(seg_weight, 0.0))
                if not self.rewriting and segments:
                    # OPG-only mode: dedicated data-loading kernels (strided
                    # copies, no compute to hide behind) before the layer.
                    for seg_weight, seg_bytes in segments:
                        gpu.submit(
                            f"{tag}xform:{seg_weight}@{idx}",
                            device.kernel_launch_ms
                            + seg_bytes / (device.tm_upload_bw * DEDICATED_COPY_BW_FACTOR),
                            not_before=um_ready.get(seg_weight, 0.0),
                            kind="transform",
                        )
                    not_before = 0.0  # transforms already serialized the wait

                # 4) The layer kernel (with embedded segments when rewriting).
                program = bundle.programs[idx]
                duration = program.time_ms(device)
                stall_total += max(0.0, not_before - gpu.free_at)
                event = gpu.submit(f"{tag}exec:{node.name}", duration, not_before=not_before, kind="compute")
                exec_total += event.duration_ms

                # 5) Segment bookkeeping: texture bytes appear as the kernel
                #    finishes; the UM copy frees after the last segment.
                for seg_weight, seg_bytes in segments:
                    sched = plan.schedules[seg_weight]
                    sim.alloc_tm(f"{tag}{seg_weight}.tex.{idx}", seg_bytes, event.end_ms)
                    transformed[seg_weight] = transformed.get(seg_weight, 0) + seg_bytes
                    if transformed[seg_weight] >= sched.nbytes:
                        sim.free_um(f"{tag}{seg_weight}", event.end_ms)

                # 6) Streamed weights consumed by this kernel are done: free
                #    their texture copies.  Winograd-transformed convolution
                #    weights stay cached — re-deriving the transform is
                #    costlier than the texture it occupies (this is why conv
                #    models save less memory, paper §5.2).
                for weight_spec in node.weights:
                    sched = plan.schedules.get(weight_spec.name)
                    if sched is None or sched.preloaded or sched.dedicated_transform:
                        continue
                    for seg in sched.segments():
                        sim.free_tm(f"{tag}{weight_spec.name}.tex.{seg.layer}", event.end_ms)

        sim.phases.execute = exec_total
        end = sim.queues.makespan_ms
        sim.free_all(end)
        details = {
            "iterations": float(iterations),
            "preload_ratio": plan.preload_ratio,
            "preload_end_ms": preload_end_ms,
            "stall_ms": stall_total,
            "embedded_bytes": float(bundle.total_embedded_bytes()),
            "dedicated_weights": float(
                sum(1 for s_ in plan.schedules.values() if s_.dedicated_transform)
            ),
            "winograd_ms": gpu.busy_time_ms(kind="transform") - sim.phases.transform,
        }
        if sim.oom:
            details["oom"] = 1.0
        return sim.finish(details=details)
