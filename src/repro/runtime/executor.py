"""FlashMem streaming executor: runs an overlap plan on the simulator.

The integrated init+execute pipeline of the paper:

1. GPU setup, then the preloaded set W loads and transforms up front
   (FlashMem's own data-loading kernels use the fast vectorised path).
2. Layer-by-layer execution: disk loads are issued when the GPU reaches each
   weight's ``z_w`` layer; rewritten kernels stream their assigned chunks
   UM -> TM while computing; convolution weights get dedicated Winograd
   transforms at their consumers (non-overlappable, with scratch memory).
3. A kernel whose staged bytes have not arrived **stalls** until the IO
   queue delivers them — late loads cost latency mechanically, which is
   exactly the trade-off the OPG objective balances.

Memory lifetimes: a streamed weight's UM copy lives from disk-load
completion until its last transform; its texture copy lives until its
consumer finishes.  Preloaded weights stay in texture memory for the whole
run.  This is where FlashMem's memory savings come from — they are
*measured* off the timeline, not asserted.

**Hot path.**  Kernel latencies come from one vectorized pricing table per
(bundle, device) — see :mod:`repro.gpusim.pricing` — and multi-iteration
runs use *steady-state extrapolation*: iterations 1 and 2 are recorded as
instruction traces; when the traces match (and every allocation made inside
the iteration is freed inside it), the remaining iterations re-execute the
trace with the exact same float arithmetic as a full pass while skipping
the per-node Python bookkeeping (dict lookups, pool accounting, label
formatting overhead).  The replay is *exact*, not approximate: it performs
the identical sequence of IEEE-754 operations a full simulation would, so
``RunResult`` is byte-identical with extrapolation on or off (pinned by
``tests/runtime/test_extrapolation_equivalence.py``).  ``extrapolate=False``
and ``use_cost_tables=False`` restore the seed path literally.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.dag import Graph
from repro.graph.ops import OpKind
from repro.gpusim.device import DeviceProfile
from repro.gpusim.engine import Simulation
from repro.gpusim import pricing
from repro.gpusim.kernels import FlashAttentionKernel
from repro.gpusim.texture import texture_bytes, winograd_expansion
from repro.kernels.codegen import ExecStyle, KernelBundle
from repro.kernels.rewriter import KernelRewriter
from repro.opg.plan import OverlapPlan
from repro.runtime.scenario import Scenario, resolve_scenario

#: Dedicated Winograd transforms run below the raw upload bandwidth
#: (gather/scatter access pattern).
WINOGRAD_BW_FACTOR = 0.5

#: Resident process baseline (runtime code, GPU driver arenas), MB.
FLASHMEM_BASELINE_MB = 80.0

#: Dedicated (non-embedded) chunk-copy kernels run strided, well below the
#: vectorised in-kernel path — what kernel rewriting buys back (Figure 7).
DEDICATED_COPY_BW_FACTOR = 0.35

#: Global default for ``FlashMemExecutor.run(extrapolate=...)``; benchmarks
#: flip it to emulate the pre-extrapolation path in A/B children.
EXTRAPOLATE_DEFAULT = True

# Trace instruction opcodes (steady-state replay).
_OP_EXEC = 0
_OP_LOAD = 1
_OP_XFORM = 2


class FlashMemExecutor:
    """Plan-driven streaming runtime (the paper's integrated pipeline).

    ``rewriting=False`` disables §4.4's kernel rewriting: the plan's chunk
    transforms run as *dedicated* data-loading kernels interleaved on the
    GPU queue instead of riding inside rewritten compute kernels — the
    OPG-only ablation of Figure 7.
    """

    def __init__(
        self,
        device: DeviceProfile,
        *,
        style: ExecStyle = ExecStyle.PIPELINED,
        rewriting: bool = True,
    ) -> None:
        self.device = device
        self.style = style if rewriting else ExecStyle.RESIDENT
        self.rewriting = rewriting

    def run(
        self,
        graph: Graph,
        plan: OverlapPlan,
        bundle: Optional[KernelBundle] = None,
        *,
        scenario: Optional[Scenario] = None,
        iterations: Optional[int] = None,
        runtime_name: str = "FlashMem",
        use_cost_tables: Optional[bool] = None,
        extrapolate: Optional[bool] = None,
    ):
        """Simulate the workload described by ``scenario``.

        ``Scenario.prefill(n)`` runs ``n`` streamed inference passes.  Each
        pass re-streams the non-preloaded weights (FlashMem frees them after
        use), which is why a warm-started preloader eventually wins on many
        consecutive same-model inferences (paper §5.2).
        ``Scenario.decode(...)`` runs per-token autoregressive generation
        against the plan's KV residency policy (see :meth:`_run_decode`).
        The bare ``iterations=`` spelling is deprecated (prefill shim).

        ``use_cost_tables`` / ``extrapolate`` override the module defaults
        (:data:`pricing.COST_TABLES_DEFAULT`, :data:`EXTRAPOLATE_DEFAULT`);
        both fast paths produce byte-identical results to the scalar/full
        simulation and exist as escape hatches for differential testing.
        """
        scenario = resolve_scenario(scenario, iterations=iterations)
        if scenario.is_decode:
            return self._run_decode(
                graph,
                plan,
                bundle,
                scenario,
                runtime_name=runtime_name,
                use_cost_tables=use_cost_tables,
                extrapolate=extrapolate,
            )
        iterations = scenario.iterations
        wall0 = time.perf_counter()
        stats = pricing.STATS
        stats_before = stats.snapshot()
        if use_cost_tables is None:
            use_cost_tables = pricing.COST_TABLES_DEFAULT
        if extrapolate is None:
            extrapolate = EXTRAPOLATE_DEFAULT
        device = self.device
        graph.freeze()
        missing = [w.name for w, _ in graph.weights() if w.name not in plan.schedules]
        if missing:
            raise ValueError(
                f"plan for {plan.model!r} does not cover {len(missing)} weights "
                f"of {graph.name!r} (first: {missing[0]!r}) — was it solved for "
                "a different graph?"
            )
        if bundle is None:
            bundle = KernelRewriter(style=self.style).rewrite_graph(graph, plan)
        sim = Simulation(device, model=graph.name, runtime=runtime_name)
        io, gpu = sim.queues.io, sim.queues.gpu
        weights_by_name = {w.name: (w, node) for w, node in graph.weights()}

        sim.alloc_um("process_baseline", int(FLASHMEM_BASELINE_MB * 1e6), 0.0)
        setup_start, setup_end = gpu.submit_fast("gpu_setup", device.gpu_setup_ms, kind="setup")
        sim.phases.setup = setup_end - setup_start

        # ---- Preload W --------------------------------------------------
        for name in plan.preloaded_weights:
            weight, node = weights_by_name[name]
            _, load_end = io.submit_fast(
                f"preload:{name}", device.disk_latency_ms + weight.nbytes / device.disk_bw, kind="load"
            )
            sim.alloc_um(name, weight.nbytes, load_end)
            expansion = winograd_expansion(node.kind, int(node.spec.attrs.get("kernel", 0)))
            bw = device.tm_upload_bw * (WINOGRAD_BW_FACTOR if expansion > 1.0 else 1.0)
            xform_start, xform_end = gpu.submit_fast(
                f"transform:{name}",
                device.kernel_launch_ms + weight.nbytes / bw,
                load_end,
                "transform",
            )
            if expansion > 1.0:
                sim.alloc_um(f"{name}.winograd", int(weight.nbytes * (expansion - 1.0)), xform_start)
                sim.free_um(f"{name}.winograd", xform_end)
            sim.alloc_tm(name + ".tex", texture_bytes(weight.tensor), xform_end)
            sim.free_um(name, xform_end)
        sim.phases.load = io.busy_time_ms(kind="load")
        sim.phases.transform = gpu.busy_time_ms(kind="transform")

        preload_end_ms = sim.queues.makespan_ms
        # Activation workspace for the whole run.
        sim.alloc_um("activations", graph.peak_activation_bytes(), preload_end_ms)

        # Index streamed weights by their load layer, and their transform
        # segments (byte-exact) by host layer.
        loads_by_layer: Dict[int, List[str]] = {}
        segments_by_layer: Dict[int, List[tuple]] = {}
        for name, sched in plan.schedules.items():
            if sched.preloaded:
                continue
            loads_by_layer.setdefault(sched.load_layer, []).append(name)
            for seg in sched.segments():
                segments_by_layer.setdefault(seg.layer, []).append(
                    (name, seg.end_offset - seg.start_offset)
                )

        node_list = list(graph.nodes())

        # Static per-run data the iteration loop re-derived per pass in the
        # scalar path (all expressions identical to the inline originals, so
        # the derived floats are bitwise the same).
        dedicated = {n for n, s in plan.schedules.items() if s.dedicated_transform}
        weight_nbytes = {n: weights_by_name[n][0].nbytes for n in plan.schedules}
        stream_load_ms = {
            name: device.disk_latency_ms + weight_nbytes[name] / device.disk_bw
            for names in loads_by_layer.values()
            for name in names
        }
        sched_nbytes = {n: s.nbytes for n, s in plan.schedules.items()}
        # Per node: streamed (non-dedicated) weight segments it consumes.
        consumers: List[tuple] = []
        for node in node_list:
            items = []
            for weight_spec in node.weights:
                sched = plan.schedules.get(weight_spec.name)
                if sched is None or sched.preloaded or sched.dedicated_transform:
                    continue
                for seg in sched.segments():
                    items.append((weight_spec.name, seg.layer, seg.end_offset - seg.start_offset))
            consumers.append(tuple(items))

        # Kernel latencies: one vectorized table per (bundle, device), or
        # the scalar oracle per node per iteration (seed path).
        durations: Optional[List[float]] = None
        if use_cost_tables:
            # Rows are a pure function of the (immutable once compiled)
            # bundle, so they are cached on it across runs; the priced table
            # itself is memoized per (device, rows) in the pricing layer.
            rows = bundle.__dict__.get("_pricing_rows")
            if rows is None:
                rows = tuple(
                    pricing.spec_row(
                        program.op,
                        extra_bytes=program.embedded_load_bytes,
                        divergent=program.style is ExecStyle.BRANCHY
                        and program.embedded_load_bytes > 0,
                    )
                    for program in (bundle.programs[node.index] for node in node_list)
                )
                bundle.__dict__["_pricing_rows"] = rows
            durations = pricing.kernel_time_table(device, rows).tolist()

        exec_total = 0.0
        stall_total = 0.0
        rewriting = self.rewriting

        # Steady-state extrapolation machinery: record iterations 1 and 2 as
        # instruction traces; if they match structurally (and are alloc/free
        # balanced), replay the trace for the remaining iterations.
        record_window = extrapolate and iterations > 3
        traces: Dict[int, Tuple[tuple, bool]] = {}
        slots: Dict[str, int] = {}
        steady = False

        it = 0
        while it < iterations:
            recording = record_window and it in (1, 2)
            trace: Optional[list] = [] if recording else None
            alloc_names = set() if recording else None
            free_names = set() if recording else None
            um_ready: Dict[str, float] = {}
            transformed: Dict[str, int] = {}
            tag = f"i{it}:" if iterations > 1 else ""
            for pos, node in enumerate(node_list):
                idx = node.index
                gpu_now = gpu.free_at
                # 1) Issue disk loads whose z_w is this layer.  Dedicated
                #    conv weights keep their cached texture after the first
                #    pass, so they are neither reloaded nor re-transformed.
                for name in loads_by_layer.get(idx, ()):
                    if it > 0 and name in dedicated:
                        continue
                    nbytes = weight_nbytes[name]
                    load_dur = stream_load_ms[name]
                    _, load_end = io.submit_fast(f"{tag}load:{name}", load_dur, gpu_now, "load")
                    um_ready[name] = load_end
                    sim.alloc_um(tag + name, nbytes, load_end)
                    if recording:
                        s = slots.get(name)
                        if s is None:
                            s = slots[name] = len(slots)
                        trace.append((_OP_LOAD, s, load_dur, nbytes, f"load:{name}"))
                        alloc_names.add(tag + name)

                # 2) Dedicated Winograd transforms for conv weights used here
                #    (first iteration only — the transformed texture persists).
                if it == 0:
                    for weight_spec in node.weights:
                        if weight_spec.name not in dedicated:
                            continue
                        weight, wnode = weights_by_name[weight_spec.name]
                        expansion = winograd_expansion(
                            wnode.kind, int(wnode.spec.attrs.get("kernel", 0))
                        )
                        xform_start, xform_end = gpu.submit_fast(
                            f"{tag}winograd:{weight_spec.name}",
                            device.kernel_launch_ms
                            + weight.nbytes / (device.tm_upload_bw * WINOGRAD_BW_FACTOR),
                            um_ready.get(weight_spec.name, 0.0),
                            "transform",
                        )
                        if expansion > 1.0:
                            scratch = int(weight.nbytes * (expansion - 1.0))
                            sim.alloc_um(f"{tag}{weight_spec.name}.winograd", scratch, xform_start)
                            sim.free_um(f"{tag}{weight_spec.name}.winograd", xform_end)
                        sim.alloc_tm(
                            f"{tag}{weight_spec.name}.tex", texture_bytes(weight.tensor), xform_end
                        )
                        sim.free_um(f"{tag}{weight_spec.name}", xform_end)

                # 3) The layer's transform segments.
                segments = segments_by_layer.get(idx, ())
                not_before = 0.0
                nb_slots: tuple = ()
                if segments:
                    for seg_weight, _nbytes in segments:
                        ready = um_ready.get(seg_weight, 0.0)
                        if ready > not_before:
                            not_before = ready
                    if not rewriting:
                        # OPG-only mode: dedicated data-loading kernels
                        # (strided copies, no compute to hide behind).
                        for seg_weight, seg_bytes in segments:
                            xdur = (
                                device.kernel_launch_ms
                                + seg_bytes / (device.tm_upload_bw * DEDICATED_COPY_BW_FACTOR)
                            )
                            gpu.submit_fast(
                                f"{tag}xform:{seg_weight}@{idx}",
                                xdur,
                                um_ready.get(seg_weight, 0.0),
                                "transform",
                            )
                            if recording:
                                s = slots.get(seg_weight)
                                if s is None:
                                    s = slots[seg_weight] = len(slots)
                                trace.append((_OP_XFORM, s, xdur, f"xform:{seg_weight}@{idx}"))
                        not_before = 0.0  # transforms already serialized the wait
                    elif recording:
                        seg_slots = []
                        for seg_weight, _nbytes in segments:
                            s = slots.get(seg_weight)
                            if s is None:
                                s = slots[seg_weight] = len(slots)
                            seg_slots.append(s)
                        nb_slots = tuple(seg_slots)

                # 4) The layer kernel (with embedded segments when rewriting).
                if durations is not None:
                    duration = durations[pos]
                else:
                    duration = bundle.programs[idx].time_ms(device)
                stall_total += max(0.0, not_before - gpu.free_at)
                start, end = gpu.submit_fast(
                    f"{tag}exec:{node.name}", duration, not_before, "compute"
                )
                exec_total += end - start

                # 5) Segment bookkeeping: texture bytes appear as the kernel
                #    finishes; the UM copy frees after the last segment.
                seg_ops: Optional[list] = [] if recording else None
                for seg_weight, seg_bytes in segments:
                    sim.alloc_tm(f"{tag}{seg_weight}.tex.{idx}", seg_bytes, end)
                    total_transformed = transformed.get(seg_weight, 0) + seg_bytes
                    transformed[seg_weight] = total_transformed
                    um_freed = 0
                    if total_transformed >= sched_nbytes[seg_weight]:
                        sim.free_um(tag + seg_weight, end)
                        um_freed = weight_nbytes[seg_weight]
                    if recording:
                        alloc_names.add(f"{tag}{seg_weight}.tex.{idx}")
                        if um_freed:
                            free_names.add(tag + seg_weight)
                        seg_ops.append((seg_bytes, um_freed))

                # 6) Streamed weights consumed by this kernel are done: free
                #    their texture copies.  Winograd-transformed convolution
                #    weights stay cached — re-deriving the transform is
                #    costlier than the texture it occupies (this is why conv
                #    models save less memory, paper §5.2).
                for wname, seg_layer, seg_size in consumers[pos]:
                    sim.free_tm(f"{tag}{wname}.tex.{seg_layer}", end)
                    if recording:
                        free_names.add(f"{tag}{wname}.tex.{seg_layer}")

                if recording:
                    trace.append(
                        (
                            _OP_EXEC,
                            duration,
                            nb_slots,
                            tuple(seg_ops),
                            tuple(size for _w, _l, size in consumers[pos]),
                            f"exec:{node.name}",
                        )
                    )

            if recording:
                balanced = alloc_names == free_names
                traces[it] = (tuple(trace), balanced)
                if it == 2:
                    trace1, bal1 = traces[1]
                    trace2, bal2 = traces[2]
                    steady = bal1 and bal2 and trace1 == trace2
            it += 1
            if steady and it < iterations:
                break

        # ---- Steady-state replay of the remaining iterations -------------
        replayed = 0
        if steady and it < iterations:
            replayed = iterations - it
            stall_total, exec_total = self._replay(
                sim, traces[2][0], len(slots), it, iterations, stall_total, exec_total
            )
            it = iterations

        sim.phases.execute = exec_total
        end = sim.queues.makespan_ms
        sim.free_all(end)
        pricing_delta = stats.delta_since(stats_before)
        wall = time.perf_counter() - wall0
        stats.runs += 1
        stats.sim_s += wall
        stats.replayed_iterations += replayed
        details = {
            "iterations": float(iterations),
            "preload_ratio": plan.preload_ratio,
            "preload_end_ms": preload_end_ms,
            "stall_ms": stall_total,
            "embedded_bytes": float(bundle.total_embedded_bytes()),
            "dedicated_weights": float(
                sum(1 for s_ in plan.schedules.values() if s_.dedicated_transform)
            ),
            "winograd_ms": gpu.busy_time_ms(kind="transform") - sim.phases.transform,
            "sim_s": wall,
            "pricing_hits": float(pricing_delta["table_hits"]),
            "pricing_misses": float(pricing_delta["table_misses"]),
            "replayed_iterations": float(replayed),
        }
        if sim.oom:
            details["oom"] = 1.0
        return sim.finish(details=details)

    def _run_decode(
        self,
        graph: Graph,
        plan: OverlapPlan,
        bundle: Optional[KernelBundle],
        scenario: Scenario,
        *,
        runtime_name: str,
        use_cost_tables: Optional[bool],
        extrapolate: Optional[bool],
    ):
        """Autoregressive decode: per-token execution with a growing KV cache.

        The prompt's KV (``scenario.context_len`` tokens) is resident when
        decoding starts; each generated token appends one row pair per cache
        (at its ``KV_APPEND`` kernel's completion) and re-prices the tiled
        attention kernels for the grown context.  The plan's
        :class:`~repro.opg.plan.KvResidencyPlan` caps resident tiles — the
        cache stops growing in memory at the cap and older tiles stream from
        disk, which is FlashMem's bounded-memory/degrading-throughput trade
        against the preloading baseline's linear growth.

        **Extrapolation.**  Per-token cost is piecewise-constant between the
        plan's context-length breakpoints (all attention tiles are priced
        full, so only the tile *count* matters).  Within each segment the
        executor records tokens 1 and 2 as instruction traces and, when they
        match, replays the remaining tokens — a 1000-token decode simulates
        a few tokens per segment.  The replay performs the identical IEEE-754
        operation sequence, so results are byte-identical with extrapolation
        on or off (pinned by ``tests/runtime/test_decode_equivalence.py``).
        """
        wall0 = time.perf_counter()
        stats = pricing.STATS
        stats_before = stats.snapshot()
        if use_cost_tables is None:
            use_cost_tables = pricing.COST_TABLES_DEFAULT
        if extrapolate is None:
            extrapolate = EXTRAPOLATE_DEFAULT
        device = self.device
        graph.freeze()
        kv_plan = plan.kv_plan
        if kv_plan is None:
            raise ValueError(
                f"decode scenario needs a KV residency plan, but the plan for "
                f"{plan.model!r} has none — compile a decode-phase graph "
                "(repro.graph.models.load_decode_model)"
            )
        missing = [w.name for w, _ in graph.weights() if w.name not in plan.schedules]
        if missing:
            raise ValueError(
                f"plan for {plan.model!r} does not cover {len(missing)} weights "
                f"of {graph.name!r} (first: {missing[0]!r}) — was it solved for "
                "a different graph?"
            )
        if bundle is None:
            bundle = KernelRewriter(style=self.style).rewrite_graph(graph, plan)
        sim = Simulation(device, model=graph.name, runtime=runtime_name)
        io, gpu = sim.queues.io, sim.queues.gpu
        weights_by_name = {w.name: (w, node) for w, node in graph.weights()}

        sim.alloc_um("process_baseline", int(FLASHMEM_BASELINE_MB * 1e6), 0.0)
        setup_start, setup_end = gpu.submit_fast("gpu_setup", device.gpu_setup_ms, kind="setup")
        sim.phases.setup = setup_end - setup_start

        # ---- Preload W (identical to the prefill path) -------------------
        for name in plan.preloaded_weights:
            weight, node = weights_by_name[name]
            _, load_end = io.submit_fast(
                f"preload:{name}", device.disk_latency_ms + weight.nbytes / device.disk_bw, kind="load"
            )
            sim.alloc_um(name, weight.nbytes, load_end)
            expansion = winograd_expansion(node.kind, int(node.spec.attrs.get("kernel", 0)))
            bw = device.tm_upload_bw * (WINOGRAD_BW_FACTOR if expansion > 1.0 else 1.0)
            xform_start, xform_end = gpu.submit_fast(
                f"transform:{name}",
                device.kernel_launch_ms + weight.nbytes / bw,
                load_end,
                "transform",
            )
            if expansion > 1.0:
                sim.alloc_um(f"{name}.winograd", int(weight.nbytes * (expansion - 1.0)), xform_start)
                sim.free_um(f"{name}.winograd", xform_end)
            sim.alloc_tm(name + ".tex", texture_bytes(weight.tensor), xform_end)
            sim.free_um(name, xform_end)
        sim.phases.load = io.busy_time_ms(kind="load")
        sim.phases.transform = gpu.busy_time_ms(kind="transform")

        preload_end_ms = sim.queues.makespan_ms
        sim.alloc_um("activations", graph.peak_activation_bytes(), preload_end_ms)

        # ---- Prompt KV becomes resident as decoding starts ---------------
        context_len, tokens = scenario.context_len, scenario.tokens
        deltas_append = sim.raw_deltas().append
        initial_kv = kv_plan.resident_bytes_at(context_len) if context_len > 0 else 0
        if initial_kv:
            deltas_append((preload_end_ms, initial_kv, 0))

        # ---- Static per-run indexes (as in the prefill path) -------------
        loads_by_layer: Dict[int, List[str]] = {}
        segments_by_layer: Dict[int, List[tuple]] = {}
        for name, sched in plan.schedules.items():
            if sched.preloaded:
                continue
            loads_by_layer.setdefault(sched.load_layer, []).append(name)
            for seg in sched.segments():
                segments_by_layer.setdefault(seg.layer, []).append(
                    (name, seg.end_offset - seg.start_offset)
                )
        node_list = list(graph.nodes())
        dedicated = {n for n, s in plan.schedules.items() if s.dedicated_transform}
        weight_nbytes = {n: weights_by_name[n][0].nbytes for n in plan.schedules}
        stream_load_ms = {
            name: device.disk_latency_ms + weight_nbytes[name] / device.disk_bw
            for names in loads_by_layer.values()
            for name in names
        }
        sched_nbytes = {n: s.nbytes for n, s in plan.schedules.items()}
        consumers: List[tuple] = []
        for node in node_list:
            items = []
            for weight_spec in node.weights:
                sched = plan.schedules.get(weight_spec.name)
                if sched is None or sched.preloaded or sched.dedicated_transform:
                    continue
                for seg in sched.segments():
                    items.append((weight_spec.name, seg.layer, seg.end_offset - seg.start_offset))
            consumers.append(tuple(items))

        # ---- Decode-specific indexes -------------------------------------
        caches = {c.name: c for c in graph.kv_cache_specs()}
        flash_pos: List[int] = []
        flash_kernels: List[FlashAttentionKernel] = []
        append_delta: Dict[int, int] = {}
        for pos, node in enumerate(node_list):
            if node.kind is OpKind.FLASH_ATTENTION:
                flash_pos.append(pos)
                flash_kernels.append(FlashAttentionKernel.from_spec(node.spec))
            elif node.kind is OpKind.KV_APPEND:
                append_delta[pos] = caches[node.spec.attrs["kv_cache"]].token_bytes
        if not flash_pos:
            raise ValueError(
                f"decode scenario requires FLASH_ATTENTION nodes; {graph.name!r} has none"
            )
        cap_tokens = kv_plan.resident_tiles * kv_plan.tile_tokens
        resident_tiles = kv_plan.resident_tiles
        texture = kv_plan.texture

        durations: Optional[List[float]] = None
        if use_cost_tables:
            rows = bundle.__dict__.get("_pricing_rows")
            if rows is None:
                rows = tuple(
                    pricing.spec_row(
                        program.op,
                        extra_bytes=program.embedded_load_bytes,
                        divergent=program.style is ExecStyle.BRANCHY
                        and program.embedded_load_bytes > 0,
                    )
                    for program in (bundle.programs[node.index] for node in node_list)
                )
                bundle.__dict__["_pricing_rows"] = rows
            durations = pricing.kernel_time_table(device, rows).tolist()

        def flash_durations(kv_seg: int) -> Dict[int, float]:
            """Attention latencies for a segment where kv covers ``kv_seg``
            tokens (any token of the segment — only the tile count prices)."""
            if use_cost_tables:
                frows = tuple(
                    pricing.flash_row(
                        k, kv_seg, resident_tiles=resident_tiles, texture=texture
                    )
                    for k in flash_kernels
                )
                priced = pricing.flash_attention_time_table(device, frows).tolist()
            else:
                priced = [
                    k.time_ms(device, kv_seg, resident_tiles=resident_tiles, texture=texture)
                    for k in flash_kernels
                ]
            return dict(zip(flash_pos, priced))

        exec_total = 0.0
        stall_total = 0.0
        rewriting = self.rewriting
        breaks = kv_plan.breakpoints(context_len, tokens)
        replayed_tokens = 0

        for si, seg_start in enumerate(breaks):
            seg_end = breaks[si + 1] if si + 1 < len(breaks) else tokens
            fl = flash_durations(context_len + seg_start + 1)
            # Whether the resident KV still grows this segment.  Constant
            # within a segment: the residency cap falls on a tile boundary,
            # so the growing->capped transition is itself a breakpoint.
            growing = (context_len + seg_start) < cap_tokens
            record_window = extrapolate and (seg_end - seg_start) > 3
            traces: Dict[int, Tuple[tuple, bool]] = {}
            slots: Dict[str, int] = {}
            steady = False
            t = seg_start
            while t < seg_end:
                rel = t - seg_start
                recording = record_window and rel in (1, 2)
                trace: Optional[list] = [] if recording else None
                alloc_names = set() if recording else None
                free_names = set() if recording else None
                um_ready: Dict[str, float] = {}
                transformed: Dict[str, int] = {}
                tag = f"t{t}:"
                for pos, node in enumerate(node_list):
                    idx = node.index
                    gpu_now = gpu.free_at
                    for name in loads_by_layer.get(idx, ()):
                        if t > 0 and name in dedicated:
                            continue
                        nbytes = weight_nbytes[name]
                        load_dur = stream_load_ms[name]
                        _, load_end = io.submit_fast(f"{tag}load:{name}", load_dur, gpu_now, "load")
                        um_ready[name] = load_end
                        sim.alloc_um(tag + name, nbytes, load_end)
                        if recording:
                            s = slots.get(name)
                            if s is None:
                                s = slots[name] = len(slots)
                            trace.append((_OP_LOAD, s, load_dur, nbytes, f"load:{name}"))
                            alloc_names.add(tag + name)

                    if t == 0:
                        for weight_spec in node.weights:
                            if weight_spec.name not in dedicated:
                                continue
                            weight, wnode = weights_by_name[weight_spec.name]
                            expansion = winograd_expansion(
                                wnode.kind, int(wnode.spec.attrs.get("kernel", 0))
                            )
                            xform_start, xform_end = gpu.submit_fast(
                                f"{tag}winograd:{weight_spec.name}",
                                device.kernel_launch_ms
                                + weight.nbytes / (device.tm_upload_bw * WINOGRAD_BW_FACTOR),
                                um_ready.get(weight_spec.name, 0.0),
                                "transform",
                            )
                            if expansion > 1.0:
                                scratch = int(weight.nbytes * (expansion - 1.0))
                                sim.alloc_um(f"{tag}{weight_spec.name}.winograd", scratch, xform_start)
                                sim.free_um(f"{tag}{weight_spec.name}.winograd", xform_end)
                            sim.alloc_tm(
                                f"{tag}{weight_spec.name}.tex", texture_bytes(weight.tensor), xform_end
                            )
                            sim.free_um(f"{tag}{weight_spec.name}", xform_end)

                    segments = segments_by_layer.get(idx, ())
                    not_before = 0.0
                    nb_slots: tuple = ()
                    if segments:
                        for seg_weight, _nbytes in segments:
                            ready = um_ready.get(seg_weight, 0.0)
                            if ready > not_before:
                                not_before = ready
                        if not rewriting:
                            for seg_weight, seg_bytes in segments:
                                xdur = (
                                    device.kernel_launch_ms
                                    + seg_bytes / (device.tm_upload_bw * DEDICATED_COPY_BW_FACTOR)
                                )
                                gpu.submit_fast(
                                    f"{tag}xform:{seg_weight}@{idx}",
                                    xdur,
                                    um_ready.get(seg_weight, 0.0),
                                    "transform",
                                )
                                if recording:
                                    s = slots.get(seg_weight)
                                    if s is None:
                                        s = slots[seg_weight] = len(slots)
                                    trace.append((_OP_XFORM, s, xdur, f"xform:{seg_weight}@{idx}"))
                            not_before = 0.0
                        elif recording:
                            seg_slots = []
                            for seg_weight, _nbytes in segments:
                                s = slots.get(seg_weight)
                                if s is None:
                                    s = slots[seg_weight] = len(slots)
                                seg_slots.append(s)
                            nb_slots = tuple(seg_slots)

                    fdur = fl.get(pos)
                    if fdur is not None:
                        duration = fdur
                    elif durations is not None:
                        duration = durations[pos]
                    else:
                        duration = bundle.programs[idx].time_ms(device)
                    stall_total += max(0.0, not_before - gpu.free_at)
                    start, end = gpu.submit_fast(
                        f"{tag}exec:{node.name}", duration, not_before, "compute"
                    )
                    exec_total += end - start

                    seg_ops: Optional[list] = [] if recording else None
                    for seg_weight, seg_bytes in segments:
                        sim.alloc_tm(f"{tag}{seg_weight}.tex.{idx}", seg_bytes, end)
                        total_transformed = transformed.get(seg_weight, 0) + seg_bytes
                        transformed[seg_weight] = total_transformed
                        um_freed = 0
                        if total_transformed >= sched_nbytes[seg_weight]:
                            sim.free_um(tag + seg_weight, end)
                            um_freed = weight_nbytes[seg_weight]
                        if recording:
                            alloc_names.add(f"{tag}{seg_weight}.tex.{idx}")
                            if um_freed:
                                free_names.add(tag + seg_weight)
                            seg_ops.append((seg_bytes, um_freed))

                    # KV growth: one appended row pair per cache, applied at
                    # the append kernel's completion.  At the residency cap
                    # the new rows displace the oldest spilled tile bytes, so
                    # resident state stays flat (delta 0).  Raw deltas bypass
                    # the pools; the replay re-applies them from the trace
                    # (they ride in seg_ops, whose replay form is identical).
                    kvd = append_delta.get(pos)
                    if kvd is not None and growing:
                        deltas_append((end, kvd, 0))
                        if recording:
                            seg_ops.append((kvd, 0))

                    for wname, seg_layer, seg_size in consumers[pos]:
                        sim.free_tm(f"{tag}{wname}.tex.{seg_layer}", end)
                        if recording:
                            free_names.add(f"{tag}{wname}.tex.{seg_layer}")

                    if recording:
                        trace.append(
                            (
                                _OP_EXEC,
                                duration,
                                nb_slots,
                                tuple(seg_ops),
                                tuple(size for _w, _l, size in consumers[pos]),
                                f"exec:{node.name}",
                            )
                        )

                if recording:
                    balanced = alloc_names == free_names
                    traces[rel] = (tuple(trace), balanced)
                    if rel == 2:
                        trace1, bal1 = traces[1]
                        trace2, bal2 = traces[2]
                        steady = bal1 and bal2 and trace1 == trace2
                t += 1
                if steady and t < seg_end:
                    break

            if steady and t < seg_end:
                replayed_tokens += seg_end - t
                stall_total, exec_total = self._replay(
                    sim, traces[2][0], len(slots), t, seg_end, stall_total, exec_total,
                    tag_prefix="t",
                )

        sim.phases.execute = exec_total
        end = sim.queues.makespan_ms
        # Close out the resident KV: raw deltas are not pool-tracked, so
        # ``free_all`` cannot see them.  Everything the initial grant plus
        # the per-token growth left outstanding is exactly the capped
        # residency at the final context.
        final_kv = kv_plan.resident_bytes_at(context_len + tokens)
        if final_kv:
            deltas_append((end, -final_kv, 0))
        sim.free_all(end)
        pricing_delta = stats.delta_since(stats_before)
        wall = time.perf_counter() - wall0
        stats.runs += 1
        stats.sim_s += wall
        stats.replayed_iterations += replayed_tokens
        decode_ms = end - preload_end_ms
        details = {
            "tokens": float(tokens),
            "context_len": float(context_len),
            "preload_ratio": plan.preload_ratio,
            "preload_end_ms": preload_end_ms,
            "decode_ms": decode_ms,
            "ms_per_token": decode_ms / tokens,
            "stall_ms": stall_total,
            "segments": float(len(breaks)),
            "replayed_tokens": float(replayed_tokens),
            "kv_resident_bytes": float(final_kv),
            "kv_budget_bytes": float(kv_plan.budget_bytes),
            "kv_spilled_bytes": float(
                max(0, (context_len + tokens) * kv_plan.token_bytes - final_kv)
            ),
            "kv_texture": float(texture),
            "sim_s": wall,
            "pricing_hits": float(pricing_delta["table_hits"]),
            "pricing_misses": float(pricing_delta["table_misses"]),
        }
        if sim.oom:
            details["oom"] = 1.0
        return sim.finish(details=details)

    @staticmethod
    def _replay(
        sim: Simulation,
        trace: tuple,
        nslots: int,
        start_it: int,
        iterations: int,
        stall_total: float,
        exec_total: float,
        tag_prefix: str = "i",
    ) -> Tuple[float, float]:
        """Re-execute ``trace`` for iterations ``start_it..iterations-1``.

        Performs the exact float arithmetic of a full pass (same submits,
        same accumulator adds, same delta-log appends in the same order) on
        local variables and raw queue columns, skipping only the per-node
        Python bookkeeping that cannot affect the result: dict indexing,
        ``MemoryPool`` membership updates (the trace is alloc/free balanced,
        so pools end each iteration exactly as they started), and re-pricing.

        Pure-compute traces (every instruction an ``_OP_EXEC`` with no
        upstream IO dependency — the common case for fully-preloaded models
        and steady decode segments) take a vectorized bulk path: the GPU
        clock is a strict left-fold of durations, which
        ``np.add.accumulate`` reproduces bitwise.
        """
        if all(ins[0] == _OP_EXEC and not ins[2] for ins in trace):
            exec_total = FlashMemExecutor._replay_bulk(
                sim, trace, start_it, iterations, exec_total, tag_prefix
            )
            return stall_total, exec_total
        io, gpu = sim.queues.io, sim.queues.gpu
        io_labels, io_starts, io_ends, io_kinds = io.replay_columns()
        gpu_labels, gpu_starts, gpu_ends, gpu_kinds = gpu.replay_columns()
        io_free, io_busy, io_kind_tot = io.clock_state()
        gpu_free, gpu_busy, gpu_kind_tot = gpu.clock_state()
        io_load = io_kind_tot.get("load", 0.0)
        gpu_compute = gpu_kind_tot.get("compute", 0.0)
        gpu_transform = gpu_kind_tot.get("transform", 0.0)
        deltas_append = sim.raw_deltas().append

        for rep_it in range(start_it, iterations):
            rtag = f"{tag_prefix}{rep_it}:"
            um_slot = [0.0] * nslots
            for ins in trace:
                code = ins[0]
                if code == _OP_EXEC:
                    _, dur, nb_slots, seg_ops, tex_frees, suffix = ins
                    nb = 0.0
                    for s in nb_slots:
                        ready = um_slot[s]
                        if ready > nb:
                            nb = ready
                    if nb > gpu_free:
                        stall_total += nb - gpu_free
                        start = nb
                    else:
                        start = gpu_free
                    end = start + dur
                    gpu_free = end
                    busy = end - start
                    exec_total += busy
                    gpu_busy += busy
                    gpu_compute += busy
                    gpu_labels.append(rtag + suffix)
                    gpu_starts.append(start)
                    gpu_ends.append(end)
                    gpu_kinds.append("compute")
                    for seg_bytes, um_freed in seg_ops:
                        deltas_append((end, seg_bytes, 0))
                        if um_freed:
                            deltas_append((end, -um_freed, 0))
                    for size in tex_frees:
                        deltas_append((end, -size, 0))
                elif code == _OP_LOAD:
                    _, s, dur, nbytes, suffix = ins
                    start = io_free if io_free > gpu_free else gpu_free
                    end = start + dur
                    io_free = end
                    busy = end - start
                    io_busy += busy
                    io_load += busy
                    io_labels.append(rtag + suffix)
                    io_starts.append(start)
                    io_ends.append(end)
                    io_kinds.append("load")
                    um_slot[s] = end
                    deltas_append((end, nbytes, 0))
                else:  # _OP_XFORM
                    _, s, dur, suffix = ins
                    nb = um_slot[s]
                    start = gpu_free if gpu_free > nb else nb
                    end = start + dur
                    gpu_free = end
                    busy = end - start
                    gpu_busy += busy
                    gpu_transform += busy
                    gpu_labels.append(rtag + suffix)
                    gpu_starts.append(start)
                    gpu_ends.append(end)
                    gpu_kinds.append("transform")

        io_kind_tot["load"] = io_load
        gpu_kind_tot["compute"] = gpu_compute
        gpu_kind_tot["transform"] = gpu_transform
        io.sync_clock(io_free, io_busy, io_kind_tot)
        gpu.sync_clock(gpu_free, gpu_busy, gpu_kind_tot)
        return stall_total, exec_total

    @staticmethod
    def _replay_bulk(
        sim: Simulation,
        trace: tuple,
        start_it: int,
        iterations: int,
        exec_total: float,
        tag_prefix: str,
    ) -> float:
        """Vectorized replay of a pure-compute trace (``_replay``'s fast path).

        With no IO dependencies every kernel starts the instant the GPU
        frees, so the event times are the strict left-fold
        ``end_i = end_{i-1} + dur_i`` — exactly what ``np.add.accumulate``
        computes (unlike ``np.sum``/``cumsum``'s pairwise trees, ufunc
        accumulation is the sequential recurrence, so every intermediate is
        bitwise what the scalar loop produces).  The busy/exec accumulators
        are folded the same way, seeded with their running values.  Memory
        deltas attach to the precomputed end times column-by-column; the
        timeline integration lexsorts the whole log, so append order does
        not affect the result.

        The event log gets ONE coalesced row for the whole replay instead of
        ``reps * k`` per-kernel rows.  This is observability-lossy (no
        per-kernel labels for the replayed span) but result-exact: nothing
        in a :class:`RunResult` reads labels, the busy accumulators are
        synced from the folds above, and ``busy_intervals`` — the energy
        model's only column consumer — merges the back-to-back kernel rows
        into exactly the ``(gpu_free, ends[-1])`` span this row spells out
        (zero-duration kernels never advance the clock, so coverage is
        contiguous either way; an all-zero replay span is skipped by the
        merge in both representations).
        """
        reps = iterations - start_it
        k = len(trace)
        gpu = sim.queues.gpu
        gpu_labels, gpu_starts, gpu_ends, gpu_kinds = gpu.replay_columns()
        gpu_free, gpu_busy, gpu_kind_tot = gpu.clock_state()
        gpu_compute = gpu_kind_tot.get("compute", 0.0)

        durs = np.tile(np.array([ins[1] for ins in trace], dtype=np.float64), reps)
        ends = np.add.accumulate(np.concatenate(([gpu_free], durs)))[1:]
        starts = np.concatenate(([gpu_free], ends[:-1]))
        busies = ends - starts
        exec_total = float(np.add.accumulate(np.concatenate(([exec_total], busies)))[-1])
        gpu_busy = float(np.add.accumulate(np.concatenate(([gpu_busy], busies)))[-1])
        gpu_compute = float(np.add.accumulate(np.concatenate(([gpu_compute], busies)))[-1])

        gpu_starts.append(float(starts[0]))
        gpu_ends.append(float(ends[-1]))
        gpu_labels.append(
            f"{tag_prefix}{start_it}-{iterations - 1}:replay[{reps}x{k} kernels]"
        )
        gpu_kinds.append("compute")

        deltas = sim.raw_deltas()
        ends_mat = ends.reshape(reps, k)
        for j, ins in enumerate(trace):
            if not ins[3] and not ins[4]:
                continue
            col = ends_mat[:, j].tolist()
            for seg_bytes, um_freed in ins[3]:
                deltas.extend((e, seg_bytes, 0) for e in col)
                if um_freed:
                    deltas.extend((e, -um_freed, 0) for e in col)
            for size in ins[4]:
                deltas.extend((e, -size, 0) for e in col)

        gpu_kind_tot["compute"] = gpu_compute
        gpu.sync_clock(float(ends[-1]), gpu_busy, gpu_kind_tot)
        return exec_total
