"""Overlap Plan Generation: problem, CP solver, LC-OPG, plans, validation."""

from repro.opg.cpsat import CpModel, CpSolver, SolveStatus
from repro.opg.exact import edf_feasible, prove_window
from repro.opg.lcopg import LcOpgSolver
from repro.opg.plan import OverlapPlan, PlanStats, TransformSegment, WeightSchedule
from repro.opg.problem import OpgConfig, OpgProblem, WeightInfo, build_problem
from repro.opg.validate import validate_plan

__all__ = [
    "CpModel",
    "CpSolver",
    "SolveStatus",
    "edf_feasible",
    "prove_window",
    "LcOpgSolver",
    "OverlapPlan",
    "PlanStats",
    "TransformSegment",
    "WeightSchedule",
    "OpgConfig",
    "OpgProblem",
    "WeightInfo",
    "build_problem",
    "validate_plan",
]
