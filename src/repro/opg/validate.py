"""Post-hoc validation of overlap plans against the OPG constraints.

Every plan the solver emits can be independently checked for C0-C4 plus
basic sanity (transforms strictly before consumption, loads no later than
first transform).  The test suite and the runtime both use this — a plan
that fails validation is a solver bug, not a runtime condition.
"""

from __future__ import annotations

from typing import Dict, List

from repro.opg.plan import OverlapPlan
from repro.opg.problem import OpgProblem


def validate_plan(plan: OverlapPlan, problem: OpgProblem, *, allow_soft_capacity: bool = True) -> List[str]:
    """Return a list of violation descriptions (empty == valid).

    ``allow_soft_capacity`` admits the C4 soft-thresholding relaxation: C3
    is checked against C_l scaled by the configured soft factor raised to
    the configured round limit.
    """
    errors: List[str] = []
    cfg = problem.config
    weight_info = {w.name: w for w in problem.weights}

    # Every problem weight must be scheduled, and nothing extra.
    missing = set(weight_info) - set(plan.schedules)
    extra = set(plan.schedules) - set(weight_info)
    for name in sorted(missing):
        errors.append(f"weight {name!r} has no schedule")
    for name in sorted(extra):
        errors.append(f"schedule for unknown weight {name!r}")

    per_layer_chunks: Dict[int, int] = {}
    for name, sched in plan.schedules.items():
        info = weight_info.get(name)
        if info is None:
            continue
        if sched.preloaded:
            if sched.transforms:
                errors.append(f"{name}: preloaded weight has transform assignments")
            continue
        if sched.dedicated_transform:
            if sched.transforms:
                errors.append(f"{name}: dedicated-transform weight has embedded segments")
            if not 0 <= sched.load_layer <= info.consumer_layer:
                errors.append(f"{name}: dedicated load layer {sched.load_layer} out of range")
            if not info.dedicated_transform:
                errors.append(f"{name}: marked dedicated but consumer is not a convolution")
            continue
        # C0 — completeness of allocation.
        if sched.streamed_chunks != info.total_chunks:
            errors.append(
                f"{name}: C0 violated — {sched.streamed_chunks} chunks assigned, T(w)={info.total_chunks}"
            )
        if info.forced_preload:
            errors.append(f"{name}: streamed but has no candidate layers (must be in W)")
        for layer, chunks in sched.transforms.items():
            if chunks <= 0:
                errors.append(f"{name}: non-positive chunk count at layer {layer}")
            if layer >= info.consumer_layer:
                errors.append(f"{name}: transform at layer {layer} not before consumer {info.consumer_layer}")
            if layer < info.consumer_layer - cfg.long_lookback:
                errors.append(f"{name}: transform at layer {layer} outside the long lookback horizon")
            per_layer_chunks[layer] = per_layer_chunks.get(layer, 0) + chunks
        # C1 — the load must be issued no later than the first transform.
        if sched.transforms and sched.load_layer > min(sched.transforms):
            errors.append(
                f"{name}: C1 violated — load at {sched.load_layer} after first transform {min(sched.transforms)}"
            )

    # C2 / C3 — per-layer transform volume and capacity.
    soft_factor = cfg.soft_threshold_factor ** cfg.max_soft_rounds if allow_soft_capacity else 1.0
    for layer, chunks in sorted(per_layer_chunks.items()):
        if chunks > problem.layer_m_peak[layer]:
            errors.append(
                f"layer {layer}: C2 violated — {chunks} chunks exceed M_peak {problem.layer_m_peak[layer]}"
            )
        limit = int(problem.layer_capacity[layer] * soft_factor)
        if chunks > limit:
            errors.append(
                f"layer {layer}: C3 violated — {chunks} chunks exceed capacity {limit}"
            )
    return errors
