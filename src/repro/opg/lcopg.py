"""LC-OPG: the Load-Capacity-aware Overlap Plan Generation solver (§3.2).

Orchestrates the full pipeline the paper describes:

1. **Process nodes** — materialise the OPG instance (weights, T(w), i_w,
   candidate layers, per-layer capacities C_l).
2. **Incremental scheduling** — slide a rolling window over the layer
   sequence; each window's weights are scheduled by a CP model built over
   the *remaining* per-layer budgets, keeping the active constraint set
   small and the solver runtime predictable.
3. **Tiered fallbacks (C4)** — on infeasibility or timeout: soft threshold
   adjustment (relax C_l), incremental preloading (move the largest
   offending weight into W), and finally the greedy heuristic backup.
4. **Hybrid execution mode** — when CP exceeds its window budget without an
   incumbent, the window switches to the greedy schedule outright.

The result is an :class:`~repro.opg.plan.OverlapPlan` with full provenance
(per-window solver statuses, fallback counts, timings — Table 4's columns).

**Window-level solve reuse.**  Offline-plan generation time is a
first-class metric (the paper budgets 150 s per model), and the dominant
cold-path cost is the adaptive-fusion loop re-running this solver from
scratch after every round of splits even though splits touch only a
handful of nodes.  The solver therefore fingerprints every rolling window
in *canonical coordinates* — weight identity is positional (names never
enter the key, so fusion renames alone cannot miss), candidate layers are
expressed as rank-in-window plus distance-to-consumer (so upstream edits
that shift or renumber absolute indices still match), and budgets are
keyed only at the layers the window can actually touch — and replays the
cached outcome (schedules, statuses, budget consumption, deferred
hand-offs) for windows whose fingerprint is unchanged.  Three further
properties make the fingerprints stable across adaptive-fusion
iterations: soft-threshold rescales are *scoped* to the window that
needs rescuing (one window's tier-1 round no longer perturbs every
downstream budget), the window partition snaps to the model's structural
period (so a split invalidates the containing block instead of shifting
every downstream window boundary), and periodic models make windows
translation-equivalent to *each other*, so replay fires within a single
cold solve as well as across iterations.  Replay applies the exact
mutation sequence a fresh solve would: scoped soft-round rescales first,
then per-layer chunk consumption, so downstream windows observe
identical budgets either way.  The invariant (and its wall-clock caveat)
is documented in DESIGN.md "compile-path performance";
``tests/fusion/test_adaptive_reuse_equivalence`` holds the reuse path to
byte-identical plans.
"""

from __future__ import annotations

import dataclasses
import functools
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.model import LoadCapacityModel
from repro.graph.dag import Graph
from repro.graph.ops import OpKind
from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.search import CpSolver
from repro.opg.exact import edf_feasible, edf_feasible_reference, prove_window
from repro.opg.heuristics import Budgets, greedy_assign, greedy_schedule
from repro.opg.plan import KvResidencyPlan, OverlapPlan, PlanStats, WeightSchedule
from repro.opg.problem import OpgConfig, OpgProblem, WeightInfo, build_problem

#: Sentinel assignment for dedicated-transform (conv) weights.
DEDICATED = object()


def plan_kv_residency(graph, plan: OverlapPlan, device, config: OpgConfig) -> Optional[KvResidencyPlan]:
    """Grant the decode-phase KV caches a residency budget alongside weights.

    Runs *after* the weight plan is solved: the caches receive at most
    ``config.kv_budget_fraction`` of the device RAM budget, further capped
    by the RAM the weight plan leaves free (preloaded weights are the
    long-lived co-tenant).  The budget converts to a uniform per-cache cap
    of whole attention tiles — at least one, so the hot tile receiving
    appends can never spill mid-write.  Resident tiles live in texture
    memory when they fit beside the preload set in half the RAM budget
    (the texture pool's share), else in plain unified memory.

    Returns None for graphs without KV caches (prefill lowering).
    """
    caches = graph.kv_cache_specs()
    if not caches:
        return None
    tile_tokens = {n.spec.attrs["tile_tokens"] for n in graph.nodes()
                   if n.kind is OpKind.FLASH_ATTENTION}
    if len(tile_tokens) != 1:
        raise ValueError(f"expected one uniform tile_tokens, got {sorted(tile_tokens)}")
    tile = tile_tokens.pop()
    token_bytes = sum(c.token_bytes for c in caches)
    tile_bytes_all = token_bytes * tile
    ram = device.ram_budget_bytes
    headroom = max(0, ram - plan.preload_bytes)
    budget = min(int(ram * config.kv_budget_fraction), headroom)
    resident_tiles = max(1, budget // tile_bytes_all)
    resident_bytes = resident_tiles * tile_bytes_all
    texture = plan.preload_bytes + resident_bytes <= ram // 2
    return KvResidencyPlan(
        tile_tokens=tile,
        budget_bytes=max(budget, tile_bytes_all),
        resident_tiles=resident_tiles,
        texture=texture,
        token_bytes=token_bytes,
        caches=len(caches),
    )


@dataclass
class _WindowEntry:
    """Everything needed to patch one solved window into a new plan without
    re-solving.

    The entry is fully *positional*: ``assignments`` maps a weight's index
    in the window sequence to ``None`` for preload, the DEDICATED sentinel,
    or a rank-keyed chunk map, and ``deferred`` holds window indices in the
    original defer order (the rescue pass is order-sensitive for equal
    consumer layers).  Layer indices are stored as ranks into the window's
    canonical layer list (the sorted union of its streaming weights'
    candidate layers).  Together these let an entry recorded at one
    absolute position — under entirely different weight names — replay
    correctly after graph edits shift, re-number, or rename the window.

    ``soft_sensitive`` marks entries whose solve *read* the global
    soft-round quota (some weight was deferred before tier 1 ran); only
    those entries are pinned to the quota state they were recorded under
    (``soft_rounds_left``).  Quota-insensitive windows — the overwhelming
    majority — replay at any quota phase, which is what stops one early
    soft round from cascading misses through every downstream window.
    """

    status: SolveStatus
    soft_rounds: int
    heuristic_windows: int
    assignments: Dict[int, object]
    deferred: Tuple[int, ...]
    consumption: Tuple[Tuple[int, int], ...]
    soft_sensitive: bool = False
    soft_rounds_left: int = 0


class WindowCache:
    """FIFO-bounded fingerprint -> :class:`_WindowEntry` map with counters.

    Lives on the solver instance, so the cache spans every ``solve`` call
    made through that solver — in particular all adaptive-fusion iterations
    of one compile, which is where the hits come from.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, _WindowEntry]" = OrderedDict()

    def get(self, key: object) -> Optional[_WindowEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: object, entry: _WindowEntry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # Soft-quota-aware addressing: quota-sensitive entries live under the
    # quota state they were recorded at, insensitive ones under ``None`` —
    # so variants for different quota phases coexist instead of thrashing
    # one slot, and a lookup counts exactly one hit or miss.
    def lookup(self, core_key: object, soft_rounds_left: int) -> Optional[_WindowEntry]:
        entry = self._entries.get((core_key, soft_rounds_left))
        if entry is None:
            entry = self._entries.get((core_key, None))
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def store(self, core_key: object, entry: _WindowEntry) -> None:
        tag = entry.soft_rounds_left if entry.soft_sensitive else None
        self.put((core_key, tag), entry)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LcOpgSolver:
    """Load-capacity-aware overlap planner.

    ``use_cp=False`` forces pure-heuristic mode (used by ablations and as
    the paper's hybrid fallback for pathological instances).
    ``exact_engine`` selects the EDF oracle/prover implementation: "fast"
    (incremental, numpy-backed — production) or "reference" (the seed
    pure-Python path, kept for differential tests and A/B benches).
    """

    def __init__(
        self,
        config: Optional[OpgConfig] = None,
        *,
        use_cp: bool = True,
        solver_factory=None,
        exact_engine: str = "fast",
    ) -> None:
        if exact_engine not in ("fast", "reference"):
            raise ValueError(f"unknown exact_engine {exact_engine!r}; use 'fast' or 'reference'")
        self.config = config or OpgConfig()
        self.use_cp = use_cp
        #: CpSolver-compatible factory ``(time_limit_s=, max_nodes=) -> solver``;
        #: benchmarks inject NaiveCpSolver here to A/B the seed architecture.
        #: ``config.portfolio >= 2`` selects the portfolio solver unless the
        #: caller injected a factory explicitly.
        if solver_factory is not None:
            self.solver_factory = solver_factory
        elif self.config.portfolio >= 2:
            from repro.opg.cpsat.portfolio import PortfolioCpSolver

            self.solver_factory = functools.partial(
                PortfolioCpSolver, k=self.config.portfolio
            )
        else:
            self.solver_factory = CpSolver
        self.exact_engine = exact_engine
        self._edf = edf_feasible if exact_engine == "fast" else edf_feasible_reference
        self.window_cache: Optional[WindowCache] = (
            WindowCache(self.config.window_cache_entries) if self.config.window_reuse else None
        )
        self._cache_config_key = self._config_key()
        #: (period, leader signature) detected on the first partition and
        #: pinned for the solver's lifetime, so every adaptive-fusion
        #: iteration snaps windows to the same structural grid.
        self._period: Optional[Tuple[int, Optional[Tuple]]] = None

    # ------------------------------------------------------------------ API
    def solve(
        self,
        graph: Graph,
        capacity_model: LoadCapacityModel,
        *,
        device_name: str = "",
        target_preload_ratio: Optional[float] = None,
    ) -> OverlapPlan:
        """Produce the overlap plan for ``graph``.

        ``target_preload_ratio`` optionally forces a fraction of weight
        bytes into W before streaming is planned (the Figure 8 trade-off
        knob).  When omitted it derives from λ: λ <= 0.9 is pure memory
        priority (no extra preload); λ -> 1 linearly approaches full
        preload, matching the paper's "higher preload ratio via larger λ".
        """
        stats = PlanStats()
        t0 = time.perf_counter()
        problem = build_problem(graph, capacity_model, self.config)
        stats.process_nodes_s = time.perf_counter() - t0

        if target_preload_ratio is None:
            target_preload_ratio = max(0.0, (self.config.lam - 0.9) / 0.1)
        target_preload_ratio = min(1.0, max(0.0, target_preload_ratio))

        forced_preloads = self._select_extra_preloads(problem, target_preload_ratio)

        budgets = Budgets(
            problem.layer_capacity, problem.layer_m_peak, max_soft_rounds=self.config.max_soft_rounds
        )
        schedules: Dict[str, WeightSchedule] = {}
        statuses: List[SolveStatus] = []
        deadline = time.perf_counter() + self.config.time_limit_s

        windows = self._windows(problem)
        stats.windows = len(windows)
        deferred: List[WeightInfo] = []
        for window_index, window_weights in enumerate(windows):
            fingerprint = base = None
            if self.window_cache is not None:
                fingerprint, base = self._window_fingerprint(window_weights, budgets, forced_preloads)
                rounds_left = budgets.max_soft_rounds - budgets.soft_rounds_used
                entry = self.window_cache.lookup(fingerprint, rounds_left)
                if entry is not None:
                    self._replay_window(
                        problem, window_weights, entry, base, budgets, schedules, statuses, stats, deferred
                    )
                    continue
            remaining_windows = len(windows) - window_index
            remaining_time = max(0.05, deadline - time.perf_counter())
            window_limit = remaining_time / remaining_windows
            soft_before = budgets.soft_rounds_used
            rounds_left_before = budgets.max_soft_rounds - soft_before
            heuristic_before = stats.heuristic_windows
            deferred_before = len(deferred)
            assignments, status, soft_sensitive = self._solve_window(
                problem, window_weights, budgets, forced_preloads, window_limit, stats, deferred
            )
            statuses.append(status)
            deferred_names = {w.name for w in deferred}
            for w in window_weights:
                if w.name in deferred_names:
                    continue  # scheduled by the rescue pass below
                schedules[w.name] = self._make_schedule(problem, w, assignments.get(w.name))
            if self.window_cache is not None:
                self.window_cache.store(
                    fingerprint,
                    self._record_window(
                        window_weights,
                        assignments,
                        status,
                        base,
                        soft_rounds=budgets.soft_rounds_used - soft_before,
                        heuristic_delta=stats.heuristic_windows - heuristic_before,
                        deferred_names=tuple(w.name for w in deferred[deferred_before:]),
                        soft_sensitive=soft_sensitive,
                        soft_rounds_left=rounds_left_before,
                    ),
                )

        # Long-range rescue: weights too large for their CP window stream
        # across the extended horizon using whatever capacity the regular
        # schedule left behind; only what still does not fit is preloaded.
        rescue_start = time.perf_counter()
        for w in sorted(deferred, key=lambda w: w.consumer_layer):
            lo = max(0, w.consumer_layer - self.config.long_lookback)
            candidates = [l for l in range(lo, w.consumer_layer) if budgets.available(l) > 0]
            placed = greedy_assign(w, budgets, candidates=candidates)
            if placed is None:
                stats.incremental_preloads += 1
            schedules[w.name] = self._make_schedule(problem, w, placed)
        stats.greedy_s += time.perf_counter() - rescue_start

        stats.solve_s = time.perf_counter() - t0 - stats.process_nodes_s - stats.build_model_s
        status = self._aggregate_status(statuses)
        if status is SolveStatus.OPTIMAL and (
            stats.soft_threshold_rounds or stats.incremental_preloads or stats.heuristic_windows
        ):
            status = SolveStatus.FEASIBLE  # fallbacks fired: not a proven optimum
        stats.solver_status = status.value
        return OverlapPlan(
            model=graph.name,
            device=device_name,
            chunk_bytes=self.config.chunk_bytes,
            m_peak_bytes=self.config.m_peak_bytes,
            schedules=schedules,
            stats=stats,
        )

    # ------------------------------------------------------- window caching
    def _config_key(self) -> Tuple:
        """Everything in the solver setup that steers a window's solve —
        except ``time_limit_s``, which only shapes wall-clock cut-offs (the
        reuse invariant assumes node budgets bind; see DESIGN.md)."""
        items = []
        for f in dataclasses.fields(self.config):
            if f.name == "time_limit_s":
                continue
            value = getattr(self.config, f.name)
            if isinstance(value, frozenset):
                value = tuple(sorted(value))
            items.append((f.name, value))
        return (tuple(items), self.use_cp, self.exact_engine, self.solver_factory)

    @staticmethod
    def _canonical_layers(
        window_weights: Sequence[WeightInfo], forced_preloads: set
    ) -> Tuple[int, ...]:
        """Sorted union of the streaming weights' candidate layers.

        These are exactly the layers a window solve reads or writes: every
        capacity-bearing layer inside a weight's EDF segment is one of its
        candidates (candidate sets are "all capacity>0 layers in the
        lookback interval"), so layers outside this union either belong to
        other windows or can never receive chunks.
        """
        layer_set = set()
        for w in window_weights:
            if w.forced_preload or w.dedicated_transform or w.name in forced_preloads:
                continue
            layer_set.update(w.candidates)
        return tuple(sorted(layer_set))

    def _window_fingerprint(
        self,
        window_weights: Sequence[WeightInfo],
        budgets: Budgets,
        forced_preloads: set,
    ) -> Tuple[object, Tuple[int, ...]]:
        """Content-address one window; returns ``(key, base_layers)``.

        The key captures every input ``_solve_window`` reads, in *canonical
        coordinates*: weight identity is positional (window order is the
        deterministic ``(consumer_layer, name)`` sort, and every inner sort
        the solve performs is stable on that order, so names cannot steer
        the outcome), each candidate layer is identified by its rank in the
        window's layer union plus its distance to the weight's consumer,
        and budgets are keyed only at union layers.  Two windows that
        differ by a constant layer shift, by weight renames, or by graph
        edits that insert or delete layers the window never touches
        therefore hash identically, while anything the solve can observe
        (candidate sharing structure, every objective distance, raw
        capacity and M_peak at readable layers) still forces a miss when
        it changes.  The global soft-round quota is deliberately *not*
        part of the key: most windows never read it, and the cache pins
        only quota-sensitive entries to the quota state they were recorded
        under (see :class:`_WindowEntry`).
        """
        layers = self._canonical_layers(window_weights, forced_preloads)
        rank = {l: i for i, l in enumerate(layers)}
        weights_key = []
        for w in window_weights:
            streaming = not (
                w.forced_preload or w.dedicated_transform or w.name in forced_preloads
            )
            weights_key.append(
                (
                    w.nbytes,
                    w.total_chunks,
                    w.dedicated_transform,
                    not streaming,
                    tuple(rank[c] for c in w.candidates) if streaming else (),
                    tuple(w.consumer_layer - c for c in w.candidates) if streaming else (),
                )
            )
        budget_key = (
            tuple(budgets.capacity[l] for l in layers),
            tuple(budgets.m_peak[l] for l in layers),
        )
        return (tuple(weights_key), budget_key, self._cache_config_key), layers

    def _record_window(
        self,
        window_weights: Sequence[WeightInfo],
        assignments: Dict[str, object],
        status: SolveStatus,
        base: Tuple[int, ...],
        *,
        soft_rounds: int,
        heuristic_delta: int,
        deferred_names: Tuple[str, ...],
        soft_sensitive: bool,
        soft_rounds_left: int,
    ) -> _WindowEntry:
        rank = {l: i for i, l in enumerate(base)}
        position = {w.name: i for i, w in enumerate(window_weights)}
        deferred_set = set(deferred_names)
        rel_assignments: Dict[int, object] = {}
        consumption: List[Tuple[int, int]] = []
        for idx, w in enumerate(window_weights):
            if w.name in deferred_set:
                continue
            assignment = assignments.get(w.name)
            if isinstance(assignment, dict):
                rel = {rank[layer]: chunks for layer, chunks in assignment.items()}
                rel_assignments[idx] = rel
                consumption.extend(sorted(rel.items()))
            else:
                rel_assignments[idx] = assignment  # None (preload) or DEDICATED
        return _WindowEntry(
            status=status,
            soft_rounds=soft_rounds,
            heuristic_windows=heuristic_delta,
            assignments=rel_assignments,
            deferred=tuple(position[name] for name in deferred_names),
            consumption=tuple(consumption),
            soft_sensitive=soft_sensitive,
            soft_rounds_left=soft_rounds_left,
        )

    def _replay_window(
        self,
        problem: OpgProblem,
        window_weights: Sequence[WeightInfo],
        entry: _WindowEntry,
        base: Tuple[int, ...],
        budgets: Budgets,
        schedules: Dict[str, WeightSchedule],
        statuses: List[SolveStatus],
        stats: PlanStats,
        deferred: List[WeightInfo],
    ) -> None:
        """Patch a cached window into the plan being built: same mutation
        order as a fresh solve (window-scoped soft-round rescales, then
        chunk consumption), same outputs."""
        for _ in range(entry.soft_rounds):
            if not budgets.scale_capacity(self.config.soft_threshold_factor, layers=base):
                # Unreachable: quota-sensitive entries are pinned to the
                # quota state they were recorded under.
                raise RuntimeError("window replay exceeded the soft-round quota")
        for rank_idx, chunks in entry.consumption:
            budgets.consume(base[rank_idx], chunks)
        statuses.append(entry.status)
        stats.windows_reused += 1
        stats.soft_threshold_rounds += entry.soft_rounds
        stats.heuristic_windows += entry.heuristic_windows
        for idx in entry.deferred:
            deferred.append(window_weights[idx])
        deferred_set = set(entry.deferred)
        for idx, w in enumerate(window_weights):
            if idx in deferred_set:
                continue
            assignment = entry.assignments[idx]
            if isinstance(assignment, dict):
                assignment = {base[r]: chunks for r, chunks in assignment.items()}
            schedules[w.name] = self._make_schedule(problem, w, assignment)

    # ------------------------------------------------------------- internals
    def _select_extra_preloads(self, problem: OpgProblem, ratio: float) -> set:
        """Pick weights to pin into W until ``ratio`` of bytes are preloaded.

        Earliest consumers first: preloading them removes the start-of-run
        stall risk, which is where extra preload buys the most latency.
        """
        pinned = set(self.config.preload_hint_weights)
        if ratio <= 0.0:
            return pinned
        total = sum(w.nbytes for w in problem.weights)
        preloaded = sum(w.nbytes for w in problem.weights if w.forced_preload or w.name in pinned)
        for w in sorted(problem.weights, key=lambda w: w.consumer_layer):
            if preloaded >= ratio * total:
                break
            if w.forced_preload or w.name in pinned:
                continue
            pinned.add(w.name)
            preloaded += w.nbytes
        return pinned

    @staticmethod
    def _structure_sig(w: WeightInfo) -> Tuple:
        """Shift- and name-invariant structural signature of one weight,
        used to detect the model's repeating block period."""
        return (
            w.total_chunks,
            w.dedicated_transform,
            w.forced_preload,
            tuple(w.consumer_layer - c for c in w.candidates),
        )

    def _windows(self, problem: OpgProblem) -> List[List[WeightInfo]]:
        """Partition weights (consumer-layer order) into rolling windows of
        at most ``window_weights`` weights, snapped to the model's
        structural period.

        Counting weights rather than layers bounds each CP model's size
        directly, and makes the partition *insertion-invariant*: fusion
        splits insert layers but conserve the weight sequence, so every
        window outside the edited region keeps exactly its membership.

        On periodic models (transformer stacks), windows additionally snap
        to block boundaries: the smallest period ``p`` of the structural
        signature sequence is detected once per solver (and pinned for the
        whole adaptive-fusion loop so every iteration partitions the same
        way), window spans cover *two* periods (the lookback interaction
        radius is about one block, so cross-block coupling inside a window
        is preserved), and each boundary lands on the nearest occurrence of
        the period's leader signature.  That buys the reuse cache two
        properties a fixed-size partition cannot offer: a fusion split
        re-synchronises at the next block leader instead of shifting every
        downstream window boundary, and all clean block windows are
        translation-equivalent — under canonical fingerprints they hash
        identically, so replay fires even within a single cold solve.
        """
        ordered = sorted(problem.weights, key=lambda w: (w.consumer_layer, w.name))
        size = self.config.window_weights
        n = len(ordered)
        if n <= size:
            return [ordered] if ordered else []
        sig = [self._structure_sig(w) for w in ordered]
        detected = self._period
        if detected is None:
            period = 0
            for p in range(4, size + 1):
                matches = sum(1 for i in range(n - p) if sig[i] == sig[i + p])
                if matches >= 0.5 * (n - p):
                    period = p
                    break
            leader = None
            if period:
                counts: Dict[Tuple, int] = {}
                for i in range(n - period):
                    if sig[i] == sig[i + period]:
                        counts[sig[i]] = counts.get(sig[i], 0) + 1
                leader = max(counts.items(), key=lambda kv: kv[1])[0]
            detected = self._period = (period, leader)
        period, leader = detected
        if not period:
            return [ordered[i : i + size] for i in range(0, n, size)]
        span = min(2 * period, size)
        anchors = [i for i in range(n) if sig[i] == leader]
        if not anchors:
            return [ordered[i : i + size] for i in range(0, n, size)]
        windows = []
        start = 0
        while start < n:
            limit = start + span
            cut = max((a for a in anchors if start < a <= limit), default=None)
            if cut is None or cut <= start:
                cut = limit
            windows.append(ordered[start : min(cut, n)])
            start = min(cut, n)
        return windows

    def _solve_window(
        self,
        problem: OpgProblem,
        weights: Sequence[WeightInfo],
        budgets: Budgets,
        forced_preloads: set,
        time_limit_s: float,
        stats: PlanStats,
        deferred: List[WeightInfo],
    ) -> Tuple[Dict[str, Optional[Dict[int, int]]], SolveStatus, bool]:
        """Schedule one window with the tiered fallback protocol.

        Returns (assignments, status, soft_sensitive); an assignment of None
        means preload.  ``soft_sensitive`` is True when the solve's outcome
        could depend on the global soft-round quota — i.e. some weight was
        deferred before tier 1 ran, making the rescue loop's behaviour a
        function of the rounds remaining.  Windows where nothing is
        deferred never observe the quota (the rescue loop no-ops for any
        quota state), which the window cache exploits.
        """
        to_stream = [
            w
            for w in weights
            if not w.forced_preload and not w.dedicated_transform and w.name not in forced_preloads
        ]
        assignments: Dict[str, Optional[Dict[int, int]]] = {
            w.name: None for w in weights if w.forced_preload or w.name in forced_preloads
        }
        for w in weights:
            # Conv weights: stream the disk load, run a dedicated Winograd
            # transform at the consumer (no embedded segments to schedule).
            if w.dedicated_transform and w.name not in forced_preloads:
                assignments[w.name] = DEDICATED
        if not to_stream:
            return assignments, SolveStatus.OPTIMAL, False

        preload_set: set = set()

        def solo_fits(w: WeightInfo) -> bool:
            return sum(budgets.available(l) for l in w.candidates) >= w.total_chunks

        deferred_here: List[WeightInfo] = []

        def defer(w: WeightInfo) -> None:
            """C4 handoff: the weight leaves this window's CP model and is
            retried by the long-range rescue pass (then W if it still does
            not fit)."""
            preload_set.add(w.name)
            deferred_here.append(w)

        def pin_unfittable(candidates_pool: Sequence[WeightInfo]) -> None:
            for w in candidates_pool:
                if w.name not in preload_set and w.name not in assignments and not solo_fits(w):
                    defer(w)

        pin_unfittable(to_stream)
        # From here on the solve reads the soft-round quota iff something
        # was deferred (the tier-1 loop below no-ops otherwise).
        soft_sensitive = bool(deferred_here)

        def soft_rescuable() -> bool:
            """Whether relaxing C_l within the remaining quota could make
            some deferred weight fit (don't burn the global quota on
            hopeless cases like LM heads, which the long-range rescue
            handles instead)."""
            rounds_left = budgets.max_soft_rounds - budgets.soft_rounds_used
            if rounds_left <= 0:
                return False
            max_scale = self.config.soft_threshold_factor ** rounds_left
            for w in to_stream:
                if w.name not in preload_set:
                    continue
                aggregate = sum(budgets.available(l) for l in w.candidates)
                if aggregate and w.total_chunks <= aggregate * max_scale:
                    return True
            return False

        # Tier 1 (soft thresholding) rescues borderline weights before they
        # are pinned for good, quota permitting.  Rescales are scoped to
        # the layers this window can touch, so downstream windows' budgets
        # stay phase-free (see Budgets.scale_capacity).
        scope = sorted({c for w in to_stream for c in w.candidates})
        while soft_rescuable() and budgets.scale_capacity(
            self.config.soft_threshold_factor, layers=scope
        ):
            stats.soft_threshold_rounds += 1
            rescued = [w for w in to_stream if w.name in preload_set and solo_fits(w)]
            for w in rescued:
                preload_set.discard(w.name)
                deferred_here[:] = [d for d in deferred_here if d.name != w.name]

        cp_rounds = 0
        while True:
            streaming = [
                w for w in to_stream if w.name not in preload_set and w.name not in assignments
            ]
            if not streaming:
                break
            # Joint demand must actually pack into the candidate layers.
            # The EDF oracle decides this exactly (interval availability);
            # tier 2 defers the largest weights until the rest fit, so the
            # CP model is feasible by construction.
            while streaming:
                releases = {}
                packable = True
                for w in streaming:
                    avail = [l for l in w.candidates if budgets.available(l) > 0]
                    if not avail:
                        packable = False
                        break
                    releases[w.name] = min(avail)
                stats.edf_calls += 1
                if packable and self._edf(streaming, releases, budgets) is not None:
                    break
                defer(max(streaming, key=lambda w: w.nbytes))
                streaming = [w for w in streaming if w.name not in preload_set]
            if not streaming:
                break
            result = None
            if self.use_cp:
                result = self._cp_window(problem, streaming, budgets, time_limit_s, stats)
            if result is not None:
                placed, status = result
                assignments.update(placed)
                deferred.extend(deferred_here)
                return assignments, status, soft_sensitive
            cp_rounds += 1
            if cp_rounds <= 1 and len(streaming) > 1:
                # One more CP attempt after deferring the single largest
                # weight (CP timed out despite a packable window).
                defer(max(streaming, key=lambda w: w.nbytes))
                continue
            break

        # Tier 3: greedy heuristic backup for whatever is left.
        stats.heuristic_windows += 1
        leftover = [
            w for w in to_stream if w.name not in preload_set and w.name not in assignments
        ]
        greedy_start = time.perf_counter()
        greedy = greedy_schedule(problem, leftover, budgets)
        stats.greedy_s += time.perf_counter() - greedy_start
        assignments.update(greedy)
        deferred.extend(deferred_here)
        return assignments, SolveStatus.FEASIBLE, soft_sensitive

    def _cp_window(
        self,
        problem: OpgProblem,
        weights: Sequence[WeightInfo],
        budgets: Budgets,
        time_limit_s: float,
        stats: PlanStats,
    ) -> Optional[Tuple[Dict[str, Dict[int, int]], SolveStatus]]:
        """Build and solve the CP model for one window.

        Returns None when no feasible schedule was found (callers fall back);
        otherwise commits budgets and returns the placements.
        """
        build_start = time.perf_counter()
        # Decision hints: an exact EDF packing (always jointly consistent,
        # so the first hinted descent lands on a complete solution), with a
        # latest-first greedy overlay where it succeeds (better distances).
        edf_releases = {}
        for w in weights:
            avail = [l for l in w.candidates if budgets.available(l) > 0]
            if not avail:
                stats.build_model_s += time.perf_counter() - build_start
                return None
            edf_releases[w.name] = min(avail)
        stats.edf_calls += 1
        hints: Optional[Dict[str, Dict[int, int]]] = self._edf(weights, edf_releases, budgets)
        if hints is None:
            stats.build_model_s += time.perf_counter() - build_start
            return None  # window is genuinely over-subscribed
        probe = Budgets(budgets.capacity, budgets.m_peak)
        greedy_hints: Dict[str, Optional[Dict[int, int]]] = {}
        greedy_ok = True
        for w in sorted(weights, key=lambda w: w.consumer_layer):
            greedy_hints[w.name] = greedy_assign(w, probe)
            if greedy_hints[w.name] is None:
                greedy_ok = False
        if greedy_ok:
            hints = {k: v for k, v in greedy_hints.items() if v is not None}
        # Per-weight latest feasible load layer (solo, against current
        # budgets): a valid upper bound for z_w that makes the objective
        # bound tight enough to *prove* optimality on uncontended windows.
        z_best: Dict[str, int] = {}
        solo_probe = Budgets(budgets.capacity, budgets.m_peak)
        for w in weights:
            solo = greedy_assign(w, solo_probe, commit=False)
            if solo:
                z_best[w.name] = min(solo)

        model = CpModel()
        x_vars: Dict[Tuple[str, int], object] = {}
        z_vars: Dict[str, object] = {}
        by_layer: Dict[int, List[Tuple[object, int]]] = {}
        for w in weights:
            candidates = [l for l in w.candidates if budgets.available(l) > 0]
            if not candidates:
                stats.build_model_s += time.perf_counter() - build_start
                return None  # cannot stream this weight against current budgets
            if sum(budgets.available(l) for l in candidates) < w.total_chunks:
                stats.build_model_s += time.perf_counter() - build_start
                return None  # aggregate capacity shortfall (paper: total chunk capacity)
            hint = hints.get(w.name) or {}
            terms = []
            for l in candidates:
                x = model.new_int(
                    0,
                    min(w.total_chunks, budgets.available(l)),
                    f"x[{w.name},{l}]",
                    hint=hint.get(l, 0),
                )
                x_vars[(w.name, l)] = x
                terms.append((x, 1))
                by_layer.setdefault(l, []).append((x, 1))
            z_hi = z_best.get(w.name, w.consumer_layer)
            z = model.new_int(
                min(candidates),
                z_hi,
                f"z[{w.name}]",
                hint=min(min(hint), z_hi) if hint else min(candidates),
            )
            z_vars[w.name] = z
            # C0 — completeness of allocation.
            model.add_sum_eq(terms, w.total_chunks, name=f"C0[{w.name}]")
            # C1 — loading distance implication.
            for l in candidates:
                model.add_implication(x_vars[(w.name, l)], 1, z, l, name=f"C1[{w.name},{l}]")
        # C2 / C3 — per-layer transform volume and load capacity.
        for l, terms in by_layer.items():
            model.add_sum_le(terms, budgets.m_peak[l], name=f"C2[{l}]")
            model.add_sum_le(terms, budgets.capacity[l], name=f"C3[{l}]")
        # Objective: minimise total loading distance sum(i_w - z_w).
        model.minimize(
            [(z, -1) for z in z_vars.values()],
            offset=sum(w.consumer_layer for w in weights),
        )
        stats.build_model_s += time.perf_counter() - build_start

        cp_start = time.perf_counter()
        solution = self.solver_factory(
            time_limit_s=time_limit_s * 0.7, max_nodes=self.config.max_nodes_per_window
        ).solve(model)
        stats.cp_solve_s += time.perf_counter() - cp_start
        stats.nodes_explored += solution.nodes_explored
        self._absorb_solver_stats(stats, solution)
        stats.cp_windows += 1
        if not solution.feasible:
            return None
        placed: Dict[str, Dict[int, int]] = {}
        for w in weights:
            assignment = {}
            for l in w.candidates:
                var = x_vars.get((w.name, l))
                if var is None:
                    continue
                chunks = solution.value_of(var)
                if chunks > 0:
                    assignment[l] = chunks
            placed[w.name] = assignment
        status = solution.status
        if status is SolveStatus.FEASIBLE and len(weights) <= self.config.prover_max_weights:
            # The chunk plateau keeps generic B&B from finishing; the exact
            # release-vector prover can close (or improve) the incumbent
            # when the incumbent is already near the solo lower bound
            # (wide gaps are combinatorial — not worth the budget).
            solo_bound = 0
            for w in weights:
                filled, best_l = 0, None
                for l in sorted(w.candidates, reverse=True):
                    if budgets.available(l) <= 0:
                        continue
                    filled += budgets.available(l)
                    best_l = l
                    if filled >= w.total_chunks:
                        break
                solo_bound += w.consumer_layer - (best_l if best_l is not None else w.consumer_layer)
            incumbent_obj = sum(
                w.consumer_layer - min(placed[w.name]) for w in weights if placed[w.name]
            )
            if incumbent_obj - solo_bound <= self.config.prover_max_gap:
                prover_start = time.perf_counter()
                improved, proven = prove_window(
                    weights,
                    budgets,
                    placed,
                    time_limit_s=min(0.5, time_limit_s * 0.3),
                    engine=self.exact_engine,
                )
                stats.exact_prover_s += time.perf_counter() - prover_start
                if proven:
                    placed = improved
                    status = SolveStatus.OPTIMAL
        for assignment in placed.values():
            for l, chunks in assignment.items():
                budgets.consume(l, chunks)
        return placed, status

    @staticmethod
    def _absorb_solver_stats(stats: PlanStats, solution) -> None:
        """Fold one CP solve's observability into the plan provenance."""
        sstats = solution.stats
        if sstats is None:
            return
        stats.propagations += sstats.propagations
        stats.prop_linear += sstats.linear_props
        stats.prop_implication += sstats.implication_props
        if sstats.queue_peak > stats.queue_peak:
            stats.queue_peak = sstats.queue_peak
        stats.time_propagate_s += sstats.time_propagate_s
        stats.time_branch_s += sstats.time_branch_s
        stats.time_bound_s += sstats.time_bound_s
        stats.window_stats.append(
            {"window": len(stats.window_stats), "status": solution.status.value, **sstats.as_dict()}
        )

    def _make_schedule(
        self, problem: OpgProblem, w: WeightInfo, assignment
    ) -> WeightSchedule:
        if assignment is DEDICATED:
            return WeightSchedule(
                weight=w.name,
                nbytes=w.nbytes,
                consumer_layer=w.consumer_layer,
                preloaded=False,
                load_layer=max(0, w.consumer_layer - problem.config.lookback),
                chunk_bytes=problem.config.chunk_bytes,
                total_chunks=w.total_chunks,
                dedicated_transform=True,
            )
        if not assignment:
            return WeightSchedule(
                weight=w.name,
                nbytes=w.nbytes,
                consumer_layer=w.consumer_layer,
                preloaded=True,
                chunk_bytes=problem.config.chunk_bytes,
                total_chunks=w.total_chunks,
            )
        return WeightSchedule(
            weight=w.name,
            nbytes=w.nbytes,
            consumer_layer=w.consumer_layer,
            preloaded=False,
            load_layer=min(assignment),
            transforms=dict(sorted(assignment.items())),
            chunk_bytes=problem.config.chunk_bytes,
            total_chunks=w.total_chunks,
        )

    @staticmethod
    def _aggregate_status(statuses: Sequence[SolveStatus]) -> SolveStatus:
        if not statuses:
            return SolveStatus.OPTIMAL
        if all(s is SolveStatus.OPTIMAL for s in statuses):
            return SolveStatus.OPTIMAL
        if any(s in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) for s in statuses):
            return SolveStatus.FEASIBLE
        return SolveStatus.UNKNOWN
