"""LC-OPG: the Load-Capacity-aware Overlap Plan Generation solver (§3.2).

Orchestrates the full pipeline the paper describes:

1. **Process nodes** — materialise the OPG instance (weights, T(w), i_w,
   candidate layers, per-layer capacities C_l).
2. **Incremental scheduling** — slide a rolling window over the layer
   sequence; each window's weights are scheduled by a CP model built over
   the *remaining* per-layer budgets, keeping the active constraint set
   small and the solver runtime predictable.
3. **Tiered fallbacks (C4)** — on infeasibility or timeout: soft threshold
   adjustment (relax C_l), incremental preloading (move the largest
   offending weight into W), and finally the greedy heuristic backup.
4. **Hybrid execution mode** — when CP exceeds its window budget without an
   incumbent, the window switches to the greedy schedule outright.

The result is an :class:`~repro.opg.plan.OverlapPlan` with full provenance
(per-window solver statuses, fallback counts, timings — Table 4's columns).

**Window-level solve reuse.**  Offline-plan generation time is a
first-class metric (the paper budgets 150 s per model), and the dominant
cold-path cost is the adaptive-fusion loop re-running this solver from
scratch after every round of splits even though splits touch only a
handful of nodes.  The solver therefore fingerprints every rolling window
— its weights, the local budget state, the global soft-round quota, and
the solver configuration, all translated to window-relative layer
coordinates so upstream graph edits that merely *shift* absolute indices
still match — and replays the cached outcome (schedules, statuses,
budget consumption, deferred hand-offs) for windows whose fingerprint is
unchanged.  Replay applies the exact mutation sequence a fresh solve
would: soft-round rescales first, then per-layer chunk consumption, so
downstream windows observe identical budgets either way.  The invariant
(and its wall-clock caveat) is documented in DESIGN.md "compile-path
performance"; ``tests/fusion/test_adaptive_reuse_equivalence`` holds the
reuse path to byte-identical plans.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.model import LoadCapacityModel
from repro.graph.dag import Graph
from repro.opg.cpsat.model import CpModel, SolveStatus
from repro.opg.cpsat.search import CpSolver
from repro.opg.exact import edf_feasible, edf_feasible_reference, prove_window
from repro.opg.heuristics import Budgets, greedy_assign, greedy_schedule
from repro.opg.plan import OverlapPlan, PlanStats, WeightSchedule
from repro.opg.problem import OpgConfig, OpgProblem, WeightInfo, build_problem

#: Sentinel assignment for dedicated-transform (conv) weights.
DEDICATED = object()


@dataclass
class _WindowEntry:
    """Everything needed to replay one solved window without re-solving.

    Layer indices are stored relative to the window's fingerprint base so an
    entry recorded at one absolute position replays correctly after graph
    edits shift the window (``assignments`` maps weight name to ``None`` for
    preload, the DEDICATED sentinel, or a relative-layer chunk map).
    ``deferred`` keeps the weights' original defer order — the rescue pass
    is order-sensitive for equal consumer layers.
    """

    status: SolveStatus
    soft_rounds: int
    heuristic_windows: int
    assignments: Dict[str, object]
    deferred: Tuple[str, ...]
    consumption: Tuple[Tuple[int, int], ...]


class WindowCache:
    """FIFO-bounded fingerprint -> :class:`_WindowEntry` map with counters.

    Lives on the solver instance, so the cache spans every ``solve`` call
    made through that solver — in particular all adaptive-fusion iterations
    of one compile, which is where the hits come from.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[object, _WindowEntry]" = OrderedDict()

    def get(self, key: object) -> Optional[_WindowEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: object, entry: _WindowEntry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class LcOpgSolver:
    """Load-capacity-aware overlap planner.

    ``use_cp=False`` forces pure-heuristic mode (used by ablations and as
    the paper's hybrid fallback for pathological instances).
    ``exact_engine`` selects the EDF oracle/prover implementation: "fast"
    (incremental, numpy-backed — production) or "reference" (the seed
    pure-Python path, kept for differential tests and A/B benches).
    """

    def __init__(
        self,
        config: Optional[OpgConfig] = None,
        *,
        use_cp: bool = True,
        solver_factory=None,
        exact_engine: str = "fast",
    ) -> None:
        if exact_engine not in ("fast", "reference"):
            raise ValueError(f"unknown exact_engine {exact_engine!r}; use 'fast' or 'reference'")
        self.config = config or OpgConfig()
        self.use_cp = use_cp
        #: CpSolver-compatible factory ``(time_limit_s=, max_nodes=) -> solver``;
        #: benchmarks inject NaiveCpSolver here to A/B the seed architecture.
        self.solver_factory = solver_factory or CpSolver
        self.exact_engine = exact_engine
        self._edf = edf_feasible if exact_engine == "fast" else edf_feasible_reference
        self.window_cache: Optional[WindowCache] = (
            WindowCache(self.config.window_cache_entries) if self.config.window_reuse else None
        )
        self._cache_config_key = self._config_key()

    # ------------------------------------------------------------------ API
    def solve(
        self,
        graph: Graph,
        capacity_model: LoadCapacityModel,
        *,
        device_name: str = "",
        target_preload_ratio: Optional[float] = None,
    ) -> OverlapPlan:
        """Produce the overlap plan for ``graph``.

        ``target_preload_ratio`` optionally forces a fraction of weight
        bytes into W before streaming is planned (the Figure 8 trade-off
        knob).  When omitted it derives from λ: λ <= 0.9 is pure memory
        priority (no extra preload); λ -> 1 linearly approaches full
        preload, matching the paper's "higher preload ratio via larger λ".
        """
        stats = PlanStats()
        t0 = time.perf_counter()
        problem = build_problem(graph, capacity_model, self.config)
        stats.process_nodes_s = time.perf_counter() - t0

        if target_preload_ratio is None:
            target_preload_ratio = max(0.0, (self.config.lam - 0.9) / 0.1)
        target_preload_ratio = min(1.0, max(0.0, target_preload_ratio))

        forced_preloads = self._select_extra_preloads(problem, target_preload_ratio)

        budgets = Budgets(
            problem.layer_capacity, problem.layer_m_peak, max_soft_rounds=self.config.max_soft_rounds
        )
        schedules: Dict[str, WeightSchedule] = {}
        statuses: List[SolveStatus] = []
        deadline = time.perf_counter() + self.config.time_limit_s

        windows = self._windows(problem)
        stats.windows = len(windows)
        deferred: List[WeightInfo] = []
        for window_index, window_weights in enumerate(windows):
            fingerprint = base = None
            if self.window_cache is not None:
                fingerprint, base = self._window_fingerprint(window_weights, budgets, forced_preloads)
                entry = self.window_cache.get(fingerprint)
                if entry is not None:
                    self._replay_window(
                        problem, window_weights, entry, base, budgets, schedules, statuses, stats, deferred
                    )
                    continue
            remaining_windows = len(windows) - window_index
            remaining_time = max(0.05, deadline - time.perf_counter())
            window_limit = remaining_time / remaining_windows
            soft_before = budgets.soft_rounds_used
            heuristic_before = stats.heuristic_windows
            deferred_before = len(deferred)
            assignments, status = self._solve_window(
                problem, window_weights, budgets, forced_preloads, window_limit, stats, deferred
            )
            statuses.append(status)
            deferred_names = {w.name for w in deferred}
            for w in window_weights:
                if w.name in deferred_names:
                    continue  # scheduled by the rescue pass below
                schedules[w.name] = self._make_schedule(problem, w, assignments.get(w.name))
            if self.window_cache is not None:
                self.window_cache.put(
                    fingerprint,
                    self._record_window(
                        window_weights,
                        assignments,
                        status,
                        base,
                        soft_rounds=budgets.soft_rounds_used - soft_before,
                        heuristic_delta=stats.heuristic_windows - heuristic_before,
                        deferred_names=tuple(w.name for w in deferred[deferred_before:]),
                    ),
                )

        # Long-range rescue: weights too large for their CP window stream
        # across the extended horizon using whatever capacity the regular
        # schedule left behind; only what still does not fit is preloaded.
        rescue_start = time.perf_counter()
        for w in sorted(deferred, key=lambda w: w.consumer_layer):
            lo = max(0, w.consumer_layer - self.config.long_lookback)
            candidates = [l for l in range(lo, w.consumer_layer) if budgets.available(l) > 0]
            placed = greedy_assign(w, budgets, candidates=candidates)
            if placed is None:
                stats.incremental_preloads += 1
            schedules[w.name] = self._make_schedule(problem, w, placed)
        stats.greedy_s += time.perf_counter() - rescue_start

        stats.solve_s = time.perf_counter() - t0 - stats.process_nodes_s - stats.build_model_s
        status = self._aggregate_status(statuses)
        if status is SolveStatus.OPTIMAL and (
            stats.soft_threshold_rounds or stats.incremental_preloads or stats.heuristic_windows
        ):
            status = SolveStatus.FEASIBLE  # fallbacks fired: not a proven optimum
        stats.solver_status = status.value
        return OverlapPlan(
            model=graph.name,
            device=device_name,
            chunk_bytes=self.config.chunk_bytes,
            m_peak_bytes=self.config.m_peak_bytes,
            schedules=schedules,
            stats=stats,
        )

    # ------------------------------------------------------- window caching
    def _config_key(self) -> Tuple:
        """Everything in the solver setup that steers a window's solve —
        except ``time_limit_s``, which only shapes wall-clock cut-offs (the
        reuse invariant assumes node budgets bind; see DESIGN.md)."""
        items = []
        for f in dataclasses.fields(self.config):
            if f.name == "time_limit_s":
                continue
            value = getattr(self.config, f.name)
            if isinstance(value, frozenset):
                value = tuple(sorted(value))
            items.append((f.name, value))
        return (tuple(items), self.use_cp, self.exact_engine, self.solver_factory)

    @staticmethod
    def _window_span(window_weights: Sequence[WeightInfo]) -> Tuple[int, int]:
        """Layer interval ``[lo, hi)`` a window's solve can read or write."""
        lo = min(
            min(w.candidates) if w.candidates else w.consumer_layer for w in window_weights
        )
        hi = max(w.consumer_layer for w in window_weights)
        return lo, hi

    def _window_fingerprint(
        self,
        window_weights: Sequence[WeightInfo],
        budgets: Budgets,
        forced_preloads: set,
    ) -> Tuple[object, int]:
        """Content-address one window; returns ``(key, base)``.

        The key captures every input ``_solve_window`` reads — weight
        shapes, candidate sets, forced-preload membership, the budget state
        over the window's span, and the global soft-round quota — with all
        layer indices expressed relative to ``base`` so that fusion splits
        upstream (which shift the whole window by a constant) still hit.
        """
        lo, hi = self._window_span(window_weights)
        weights_key = tuple(
            (
                w.name,
                w.nbytes,
                w.total_chunks,
                w.consumer_layer - lo,
                w.dedicated_transform,
                w.name in forced_preloads,
                tuple(c - lo for c in w.candidates),
            )
            for w in window_weights
        )
        budget_key = (
            tuple(budgets.capacity[lo:hi]),
            tuple(budgets.m_peak[lo:hi]),
            budgets.soft_rounds_used,
            budgets.max_soft_rounds,
        )
        return (weights_key, budget_key, self._cache_config_key), lo

    def _record_window(
        self,
        window_weights: Sequence[WeightInfo],
        assignments: Dict[str, object],
        status: SolveStatus,
        base: int,
        *,
        soft_rounds: int,
        heuristic_delta: int,
        deferred_names: Tuple[str, ...],
    ) -> _WindowEntry:
        deferred_set = set(deferred_names)
        rel_assignments: Dict[str, object] = {}
        consumption: List[Tuple[int, int]] = []
        for w in window_weights:
            if w.name in deferred_set:
                continue
            assignment = assignments.get(w.name)
            if isinstance(assignment, dict):
                rel = {layer - base: chunks for layer, chunks in assignment.items()}
                rel_assignments[w.name] = rel
                consumption.extend(sorted(rel.items()))
            else:
                rel_assignments[w.name] = assignment  # None (preload) or DEDICATED
        return _WindowEntry(
            status=status,
            soft_rounds=soft_rounds,
            heuristic_windows=heuristic_delta,
            assignments=rel_assignments,
            deferred=deferred_names,
            consumption=tuple(consumption),
        )

    def _replay_window(
        self,
        problem: OpgProblem,
        window_weights: Sequence[WeightInfo],
        entry: _WindowEntry,
        base: int,
        budgets: Budgets,
        schedules: Dict[str, WeightSchedule],
        statuses: List[SolveStatus],
        stats: PlanStats,
        deferred: List[WeightInfo],
    ) -> None:
        """Re-apply a cached window: same mutation order as a fresh solve
        (soft-round rescales, then chunk consumption), same outputs."""
        for _ in range(entry.soft_rounds):
            if not budgets.scale_capacity(self.config.soft_threshold_factor):
                # Unreachable: the quota state is part of the fingerprint.
                raise RuntimeError("window replay exceeded the soft-round quota")
        for rel_layer, chunks in entry.consumption:
            budgets.consume(base + rel_layer, chunks)
        statuses.append(entry.status)
        stats.windows_reused += 1
        stats.soft_threshold_rounds += entry.soft_rounds
        stats.heuristic_windows += entry.heuristic_windows
        by_name = {w.name: w for w in window_weights}
        for name in entry.deferred:
            deferred.append(by_name[name])
        deferred_set = set(entry.deferred)
        for w in window_weights:
            if w.name in deferred_set:
                continue
            assignment = entry.assignments[w.name]
            if isinstance(assignment, dict):
                assignment = {base + layer: chunks for layer, chunks in assignment.items()}
            schedules[w.name] = self._make_schedule(problem, w, assignment)

    # ------------------------------------------------------------- internals
    def _select_extra_preloads(self, problem: OpgProblem, ratio: float) -> set:
        """Pick weights to pin into W until ``ratio`` of bytes are preloaded.

        Earliest consumers first: preloading them removes the start-of-run
        stall risk, which is where extra preload buys the most latency.
        """
        pinned = set(self.config.preload_hint_weights)
        if ratio <= 0.0:
            return pinned
        total = sum(w.nbytes for w in problem.weights)
        preloaded = sum(w.nbytes for w in problem.weights if w.forced_preload or w.name in pinned)
        for w in sorted(problem.weights, key=lambda w: w.consumer_layer):
            if preloaded >= ratio * total:
                break
            if w.forced_preload or w.name in pinned:
                continue
            pinned.add(w.name)
            preloaded += w.nbytes
        return pinned

    def _windows(self, problem: OpgProblem) -> List[List[WeightInfo]]:
        """Partition weights (consumer-layer order) into rolling windows of
        at most ``window_weights`` weights.

        Counting weights rather than layers bounds each CP model's size
        directly, and makes the partition *insertion-invariant*: fusion
        splits insert layers but conserve the weight sequence, so every
        window outside the edited region keeps exactly its membership —
        the property the window-reuse cache needs to hit across
        adaptive-fusion iterations (a layer-span rule lets each inserted
        layer slide a weight across every downstream boundary, cascading
        misses through the whole model).
        """
        ordered = sorted(problem.weights, key=lambda w: (w.consumer_layer, w.name))
        size = self.config.window_weights
        return [ordered[i : i + size] for i in range(0, len(ordered), size)]

    def _solve_window(
        self,
        problem: OpgProblem,
        weights: Sequence[WeightInfo],
        budgets: Budgets,
        forced_preloads: set,
        time_limit_s: float,
        stats: PlanStats,
        deferred: List[WeightInfo],
    ) -> Tuple[Dict[str, Optional[Dict[int, int]]], SolveStatus]:
        """Schedule one window with the tiered fallback protocol.

        Returns (assignments, status); an assignment of None means preload.
        """
        to_stream = [
            w
            for w in weights
            if not w.forced_preload and not w.dedicated_transform and w.name not in forced_preloads
        ]
        assignments: Dict[str, Optional[Dict[int, int]]] = {
            w.name: None for w in weights if w.forced_preload or w.name in forced_preloads
        }
        for w in weights:
            # Conv weights: stream the disk load, run a dedicated Winograd
            # transform at the consumer (no embedded segments to schedule).
            if w.dedicated_transform and w.name not in forced_preloads:
                assignments[w.name] = DEDICATED
        if not to_stream:
            return assignments, SolveStatus.OPTIMAL

        preload_set: set = set()

        def solo_fits(w: WeightInfo) -> bool:
            return sum(budgets.available(l) for l in w.candidates) >= w.total_chunks

        deferred_here: List[WeightInfo] = []

        def defer(w: WeightInfo) -> None:
            """C4 handoff: the weight leaves this window's CP model and is
            retried by the long-range rescue pass (then W if it still does
            not fit)."""
            preload_set.add(w.name)
            deferred_here.append(w)

        def pin_unfittable(candidates_pool: Sequence[WeightInfo]) -> None:
            for w in candidates_pool:
                if w.name not in preload_set and w.name not in assignments and not solo_fits(w):
                    defer(w)

        pin_unfittable(to_stream)

        def soft_rescuable() -> bool:
            """Whether relaxing C_l within the remaining quota could make
            some deferred weight fit (don't burn the global quota on
            hopeless cases like LM heads, which the long-range rescue
            handles instead)."""
            rounds_left = budgets.max_soft_rounds - budgets.soft_rounds_used
            if rounds_left <= 0:
                return False
            max_scale = self.config.soft_threshold_factor ** rounds_left
            for w in to_stream:
                if w.name not in preload_set:
                    continue
                aggregate = sum(budgets.available(l) for l in w.candidates)
                if aggregate and w.total_chunks <= aggregate * max_scale:
                    return True
            return False

        # Tier 1 (soft thresholding) rescues borderline weights before they
        # are pinned for good, quota permitting.
        while soft_rescuable() and budgets.scale_capacity(self.config.soft_threshold_factor):
            stats.soft_threshold_rounds += 1
            rescued = [w for w in to_stream if w.name in preload_set and solo_fits(w)]
            for w in rescued:
                preload_set.discard(w.name)
                deferred_here[:] = [d for d in deferred_here if d.name != w.name]

        cp_rounds = 0
        while True:
            streaming = [
                w for w in to_stream if w.name not in preload_set and w.name not in assignments
            ]
            if not streaming:
                break
            # Joint demand must actually pack into the candidate layers.
            # The EDF oracle decides this exactly (interval availability);
            # tier 2 defers the largest weights until the rest fit, so the
            # CP model is feasible by construction.
            while streaming:
                releases = {}
                packable = True
                for w in streaming:
                    avail = [l for l in w.candidates if budgets.available(l) > 0]
                    if not avail:
                        packable = False
                        break
                    releases[w.name] = min(avail)
                stats.edf_calls += 1
                if packable and self._edf(streaming, releases, budgets) is not None:
                    break
                defer(max(streaming, key=lambda w: w.nbytes))
                streaming = [w for w in streaming if w.name not in preload_set]
            if not streaming:
                break
            result = None
            if self.use_cp:
                result = self._cp_window(problem, streaming, budgets, time_limit_s, stats)
            if result is not None:
                placed, status = result
                assignments.update(placed)
                deferred.extend(deferred_here)
                return assignments, status
            cp_rounds += 1
            if cp_rounds <= 1 and len(streaming) > 1:
                # One more CP attempt after deferring the single largest
                # weight (CP timed out despite a packable window).
                defer(max(streaming, key=lambda w: w.nbytes))
                continue
            break

        # Tier 3: greedy heuristic backup for whatever is left.
        stats.heuristic_windows += 1
        leftover = [
            w for w in to_stream if w.name not in preload_set and w.name not in assignments
        ]
        greedy_start = time.perf_counter()
        greedy = greedy_schedule(problem, leftover, budgets)
        stats.greedy_s += time.perf_counter() - greedy_start
        assignments.update(greedy)
        deferred.extend(deferred_here)
        return assignments, SolveStatus.FEASIBLE

    def _cp_window(
        self,
        problem: OpgProblem,
        weights: Sequence[WeightInfo],
        budgets: Budgets,
        time_limit_s: float,
        stats: PlanStats,
    ) -> Optional[Tuple[Dict[str, Dict[int, int]], SolveStatus]]:
        """Build and solve the CP model for one window.

        Returns None when no feasible schedule was found (callers fall back);
        otherwise commits budgets and returns the placements.
        """
        build_start = time.perf_counter()
        # Decision hints: an exact EDF packing (always jointly consistent,
        # so the first hinted descent lands on a complete solution), with a
        # latest-first greedy overlay where it succeeds (better distances).
        edf_releases = {}
        for w in weights:
            avail = [l for l in w.candidates if budgets.available(l) > 0]
            if not avail:
                stats.build_model_s += time.perf_counter() - build_start
                return None
            edf_releases[w.name] = min(avail)
        stats.edf_calls += 1
        hints: Optional[Dict[str, Dict[int, int]]] = self._edf(weights, edf_releases, budgets)
        if hints is None:
            stats.build_model_s += time.perf_counter() - build_start
            return None  # window is genuinely over-subscribed
        probe = Budgets(budgets.capacity, budgets.m_peak)
        greedy_hints: Dict[str, Optional[Dict[int, int]]] = {}
        greedy_ok = True
        for w in sorted(weights, key=lambda w: w.consumer_layer):
            greedy_hints[w.name] = greedy_assign(w, probe)
            if greedy_hints[w.name] is None:
                greedy_ok = False
        if greedy_ok:
            hints = {k: v for k, v in greedy_hints.items() if v is not None}
        # Per-weight latest feasible load layer (solo, against current
        # budgets): a valid upper bound for z_w that makes the objective
        # bound tight enough to *prove* optimality on uncontended windows.
        z_best: Dict[str, int] = {}
        solo_probe = Budgets(budgets.capacity, budgets.m_peak)
        for w in weights:
            solo = greedy_assign(w, solo_probe, commit=False)
            if solo:
                z_best[w.name] = min(solo)

        model = CpModel()
        x_vars: Dict[Tuple[str, int], object] = {}
        z_vars: Dict[str, object] = {}
        by_layer: Dict[int, List[Tuple[object, int]]] = {}
        for w in weights:
            candidates = [l for l in w.candidates if budgets.available(l) > 0]
            if not candidates:
                stats.build_model_s += time.perf_counter() - build_start
                return None  # cannot stream this weight against current budgets
            if sum(budgets.available(l) for l in candidates) < w.total_chunks:
                stats.build_model_s += time.perf_counter() - build_start
                return None  # aggregate capacity shortfall (paper: total chunk capacity)
            hint = hints.get(w.name) or {}
            terms = []
            for l in candidates:
                x = model.new_int(
                    0,
                    min(w.total_chunks, budgets.available(l)),
                    f"x[{w.name},{l}]",
                    hint=hint.get(l, 0),
                )
                x_vars[(w.name, l)] = x
                terms.append((x, 1))
                by_layer.setdefault(l, []).append((x, 1))
            z_hi = z_best.get(w.name, w.consumer_layer)
            z = model.new_int(
                min(candidates),
                z_hi,
                f"z[{w.name}]",
                hint=min(min(hint), z_hi) if hint else min(candidates),
            )
            z_vars[w.name] = z
            # C0 — completeness of allocation.
            model.add_sum_eq(terms, w.total_chunks, name=f"C0[{w.name}]")
            # C1 — loading distance implication.
            for l in candidates:
                model.add_implication(x_vars[(w.name, l)], 1, z, l, name=f"C1[{w.name},{l}]")
        # C2 / C3 — per-layer transform volume and load capacity.
        for l, terms in by_layer.items():
            model.add_sum_le(terms, budgets.m_peak[l], name=f"C2[{l}]")
            model.add_sum_le(terms, budgets.capacity[l], name=f"C3[{l}]")
        # Objective: minimise total loading distance sum(i_w - z_w).
        model.minimize(
            [(z, -1) for z in z_vars.values()],
            offset=sum(w.consumer_layer for w in weights),
        )
        stats.build_model_s += time.perf_counter() - build_start

        cp_start = time.perf_counter()
        solution = self.solver_factory(
            time_limit_s=time_limit_s * 0.7, max_nodes=self.config.max_nodes_per_window
        ).solve(model)
        stats.cp_solve_s += time.perf_counter() - cp_start
        stats.nodes_explored += solution.nodes_explored
        self._absorb_solver_stats(stats, solution)
        stats.cp_windows += 1
        if not solution.feasible:
            return None
        placed: Dict[str, Dict[int, int]] = {}
        for w in weights:
            assignment = {}
            for l in w.candidates:
                var = x_vars.get((w.name, l))
                if var is None:
                    continue
                chunks = solution.value_of(var)
                if chunks > 0:
                    assignment[l] = chunks
            placed[w.name] = assignment
        status = solution.status
        if status is SolveStatus.FEASIBLE and len(weights) <= self.config.prover_max_weights:
            # The chunk plateau keeps generic B&B from finishing; the exact
            # release-vector prover can close (or improve) the incumbent
            # when the incumbent is already near the solo lower bound
            # (wide gaps are combinatorial — not worth the budget).
            solo_bound = 0
            for w in weights:
                filled, best_l = 0, None
                for l in sorted(w.candidates, reverse=True):
                    if budgets.available(l) <= 0:
                        continue
                    filled += budgets.available(l)
                    best_l = l
                    if filled >= w.total_chunks:
                        break
                solo_bound += w.consumer_layer - (best_l if best_l is not None else w.consumer_layer)
            incumbent_obj = sum(
                w.consumer_layer - min(placed[w.name]) for w in weights if placed[w.name]
            )
            if incumbent_obj - solo_bound <= self.config.prover_max_gap:
                prover_start = time.perf_counter()
                improved, proven = prove_window(
                    weights,
                    budgets,
                    placed,
                    time_limit_s=min(0.5, time_limit_s * 0.3),
                    engine=self.exact_engine,
                )
                stats.exact_prover_s += time.perf_counter() - prover_start
                if proven:
                    placed = improved
                    status = SolveStatus.OPTIMAL
        for assignment in placed.values():
            for l, chunks in assignment.items():
                budgets.consume(l, chunks)
        return placed, status

    @staticmethod
    def _absorb_solver_stats(stats: PlanStats, solution) -> None:
        """Fold one CP solve's observability into the plan provenance."""
        sstats = solution.stats
        if sstats is None:
            return
        stats.propagations += sstats.propagations
        stats.prop_linear += sstats.linear_props
        stats.prop_implication += sstats.implication_props
        if sstats.queue_peak > stats.queue_peak:
            stats.queue_peak = sstats.queue_peak
        stats.time_propagate_s += sstats.time_propagate_s
        stats.time_branch_s += sstats.time_branch_s
        stats.time_bound_s += sstats.time_bound_s
        stats.window_stats.append(
            {"window": len(stats.window_stats), "status": solution.status.value, **sstats.as_dict()}
        )

    def _make_schedule(
        self, problem: OpgProblem, w: WeightInfo, assignment
    ) -> WeightSchedule:
        if assignment is DEDICATED:
            return WeightSchedule(
                weight=w.name,
                nbytes=w.nbytes,
                consumer_layer=w.consumer_layer,
                preloaded=False,
                load_layer=max(0, w.consumer_layer - problem.config.lookback),
                chunk_bytes=problem.config.chunk_bytes,
                total_chunks=w.total_chunks,
                dedicated_transform=True,
            )
        if not assignment:
            return WeightSchedule(
                weight=w.name,
                nbytes=w.nbytes,
                consumer_layer=w.consumer_layer,
                preloaded=True,
                chunk_bytes=problem.config.chunk_bytes,
                total_chunks=w.total_chunks,
            )
        return WeightSchedule(
            weight=w.name,
            nbytes=w.nbytes,
            consumer_layer=w.consumer_layer,
            preloaded=False,
            load_layer=min(assignment),
            transforms=dict(sorted(assignment.items())),
            chunk_bytes=problem.config.chunk_bytes,
            total_chunks=w.total_chunks,
        )

    @staticmethod
    def _aggregate_status(statuses: Sequence[SolveStatus]) -> SolveStatus:
        if not statuses:
            return SolveStatus.OPTIMAL
        if all(s is SolveStatus.OPTIMAL for s in statuses):
            return SolveStatus.OPTIMAL
        if any(s in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE) for s in statuses):
            return SolveStatus.FEASIBLE
        return SolveStatus.UNKNOWN
