"""OPG problem construction (paper §3.1).

Turns (lowered graph, capacity model, configuration) into the quantities the
solver schedules over:

- per-weight: size, chunk count T(w), first-consuming layer i_w, and the
  candidate transforming layers L(w);
- per-layer: load capacity C_l in chunks and the transform-volume bound
  M_peak (constraint C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.capacity.model import LoadCapacityModel
from repro.graph.dag import Graph


@dataclass(frozen=True)
class OpgConfig:
    """Hyperparameters of the OPG formulation (paper Table 2 + §3.2).

    Attributes:
        chunk_bytes: uniform chunk size S.
        m_peak_bytes: per-layer transform-volume bound M_peak.  The paper's
            memory-priority default is 500 MB with lambda ~= 0.9.
        lam: λ — weight of the preload term in the objective.
        mu: μ — distance penalty used by the fusion penalty score.
        alpha: α — capacity gain threshold for splitting fused operators.
        lookback: how many layers before i_w may host a weight's transforms
            (bounds L(w), keeping the CP model tractable).
        long_lookback: extended horizon used by the greedy rescue pass for
            weights too large for the CP window (e.g. LM heads); trades
            longer residency for avoiding a full preload.
        window_weights: rolling-window size for incremental scheduling, in
            weights per window.  Counting weights (not layers) bounds the
            CP model size directly and — because fusion splits insert
            *layers* but conserve the weight sequence — keeps the window
            partition invariant across adaptive-fusion iterations, which
            the window-reuse cache depends on.
        time_limit_s: total solver wall-clock budget for the model
            (paper uses 150 s on a workstation).
        soft_threshold_factor: C4 soft-thresholding multiplier on C_l.
        max_soft_rounds: soft-threshold retries before incremental preload.
        preload_hint_weights: weights forced into W by name (paper §5.4:
            "weights can also be explicitly specified by directly adding
            their names to the preload list").
    """

    chunk_bytes: int = 512 * 1024
    m_peak_bytes: int = 500 * 1024 * 1024
    lam: float = 0.9
    mu: float = 0.1
    alpha: float = 0.25
    lookback: int = 16
    long_lookback: int = 160
    window_weights: int = 64
    time_limit_s: float = 20.0
    soft_threshold_factor: float = 1.3
    max_soft_rounds: int = 2
    #: Branch-and-bound node budget per window (bounds worst-case runtime
    #: alongside the wall-clock limit, as CP-SAT's deterministic limit does).
    max_nodes_per_window: int = 20_000
    #: Window sizes (in weights) the exact optimality prover attempts after
    #: a FEASIBLE CP incumbent (0 disables the prover).
    prover_max_weights: int = 48
    #: Prover only engages when the incumbent is within this distance of
    #: the solo lower bound (wider gaps are combinatorial).
    prover_max_gap: int = 8
    #: Cross-solve window reuse: fingerprint each rolling window in
    #: canonical (positional, shift- and rename-invariant) coordinates and
    #: replay the cached schedule when an equivalent window comes back —
    #: as it does for most windows across adaptive-fusion iterations, and
    #: between the repeated blocks of periodic models even within one
    #: solve.  Reuse assumes the deterministic node budgets, not
    #: wall-clock limits, bound the per-window searches (see DESIGN.md
    #: "compile-path performance" for the exact invariant).
    window_reuse: bool = True
    #: FIFO capacity of the window cache, in entries.
    window_cache_entries: int = 4096
    #: Portfolio width K for the per-window CP solves: K-1 alternate
    #: branching heuristics race the canonical search in worker processes,
    #: supplying proven-optimal certificates that let it stop early (see
    #: :mod:`repro.opg.cpsat.portfolio`).  Certificates only upgrade
    #: statuses — plans are byte-identical with the portfolio on or off.
    #: 0/1 disable; on a single usable core the portfolio always runs
    #: sequentially (the alternates would just steal the canonical
    #: search's core).
    portfolio: int = 0
    #: Fraction of the device RAM budget the decode-phase KV caches may
    #: occupy as resident state.  The KV residency planner additionally
    #: caps the grant by the RAM the weight plan leaves free, so preload +
    #: resident KV never exceed the budget by construction (see
    #: :func:`repro.opg.lcopg.plan_kv_residency`).
    kv_budget_fraction: float = 0.35
    preload_hint_weights: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if not 0.0 <= self.lam <= 1.0:
            raise ValueError("lam must be in [0, 1]")
        if self.lookback < 1 or self.window_weights < 2:
            raise ValueError("lookback >= 1 and window_weights >= 2 required")
        if not 0.0 < self.kv_budget_fraction <= 1.0:
            raise ValueError("kv_budget_fraction must be in (0, 1]")


@dataclass
class WeightInfo:
    """Solver view of one weight."""

    name: str
    nbytes: int
    consumer_layer: int  # i_w, 0-based
    total_chunks: int    # T(w)
    candidates: List[int] = field(default_factory=list)  # L(w)
    #: Convolution weights: streamed from disk on demand, but their Winograd
    #: layout transformation cannot be embedded in other kernels (paper
    #: §5.2/§5.4) — it runs as a dedicated kernel at the consumer.
    dedicated_transform: bool = False

    @property
    def forced_preload(self) -> bool:
        """True when no earlier layer can host any transform (e.g. the first
        layers' weights — the paper notes these must be in W)."""
        return not self.candidates and not self.dedicated_transform


@dataclass
class OpgProblem:
    """Fully-materialised OPG instance."""

    model: str
    config: OpgConfig
    weights: List[WeightInfo]
    #: C_l per layer, in chunks (0 for layers that cannot host loads).
    layer_capacity: List[int]
    #: M_peak per layer, in chunks (uniform; kept per-layer for adaptivity).
    layer_m_peak: List[int]
    num_layers: int

    @property
    def total_chunks(self) -> int:
        return sum(w.total_chunks for w in self.weights)

    @property
    def streamable_weights(self) -> List[WeightInfo]:
        return [w for w in self.weights if not w.forced_preload]

    def weights_by_consumer(self) -> Dict[int, List[WeightInfo]]:
        out: Dict[int, List[WeightInfo]] = {}
        for w in self.weights:
            out.setdefault(w.consumer_layer, []).append(w)
        return out


def build_problem(
    graph: Graph,
    capacity_model: LoadCapacityModel,
    config: Optional[OpgConfig] = None,
) -> OpgProblem:
    """Materialise the OPG instance for ``graph``.

    Candidate sets L(w) are the layers in ``[i_w - lookback, i_w)`` with
    non-zero capacity; weights whose candidate set is empty (or that the
    user pinned via ``preload_hint_weights``) are forced into W.
    """
    config = config or OpgConfig()
    graph.freeze()
    nodes = graph.nodes()
    from repro.graph.ops import OpKind

    # Tiled decode-attention kernels saturate their memory pipeline with KV
    # tile traffic (and may themselves be streaming spilled tiles from
    # disk), so they host no embedded weight transforms regardless of what
    # the generic REUSABLE inversion would grant them.
    chunked = capacity_model.capacity_chunks_batch(
        [n.spec for n in nodes], config.chunk_bytes
    )
    capacity = [
        0 if n.kind is OpKind.FLASH_ATTENTION else chunked[i]
        for i, n in enumerate(nodes)
    ]
    m_peak_chunks = max(0, config.m_peak_bytes // config.chunk_bytes)

    weights: List[WeightInfo] = []
    for w, node in graph.weights():
        i_w = node.index
        total_chunks = w.chunk_count(config.chunk_bytes)
        dedicated = node.kind in (OpKind.CONV2D, OpKind.DEPTHWISE_CONV2D) and i_w > 0
        if w.name in config.preload_hint_weights or dedicated:
            candidates: List[int] = []
        else:
            lo = max(0, i_w - config.lookback)
            candidates = [l for l in range(lo, i_w) if capacity[l] > 0]
        weights.append(
            WeightInfo(
                name=w.name,
                nbytes=w.nbytes,
                consumer_layer=i_w,
                total_chunks=total_chunks,
                candidates=candidates,
                dedicated_transform=dedicated,
            )
        )
    return OpgProblem(
        model=graph.name,
        config=config,
        weights=weights,
        layer_capacity=capacity,
        layer_m_peak=[m_peak_chunks] * len(nodes),
        num_layers=len(nodes),
    )
