"""Greedy heuristic scheduler — the solver's final fallback tier (C4).

Assigns each weight's chunks to its candidate layers latest-first (loading
as close to consumption as possible, which minimises residency), respecting
per-layer capacity and M_peak budgets.  Anything that cannot be placed is
preloaded.  Always succeeds, so the tiered fallback terminates.

The greedy schedule also seeds the CP search as decision hints, giving the
branch-and-bound an immediate incumbent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.opg.problem import OpgProblem, WeightInfo


class Budgets:
    """Mutable per-layer chunk budgets shared across scheduling windows.

    ``max_soft_rounds`` caps how many times the capacities may be relaxed
    over the budgets' whole lifetime — the relaxation is global state, so an
    uncapped per-window retry loop would compound past what plan validation
    (and the paper's C4) admits.

    ``available`` is the solver's single hottest query (millions of calls
    per compile), so the ``max(0, min(C_l, M_peak_l))`` is memoised in a
    per-layer array maintained by every mutator — ``consume``/``release``
    update one slot, ``scale_capacity`` (the soft-round mutation) rebuilds
    the whole array.  ``capacity`` and ``m_peak`` must only be mutated
    through those methods.
    """

    def __init__(self, capacity: Sequence[int], m_peak: Sequence[int], *, max_soft_rounds: int = 2) -> None:
        self.capacity = list(capacity)
        self.m_peak = list(m_peak)
        self.max_soft_rounds = max_soft_rounds
        self.soft_rounds_used = 0
        self._avail = [max(0, min(c, m)) for c, m in zip(self.capacity, self.m_peak)]

    def available(self, layer: int) -> int:
        return self._avail[layer]

    def available_range(self, lo: int, hi: int) -> List[int]:
        """Per-layer availability over ``[lo, hi)`` (a copy, safe to mutate)."""
        return self._avail[lo:hi]

    def consume(self, layer: int, chunks: int) -> None:
        if chunks > self._avail[layer]:
            raise ValueError(
                f"layer {layer}: consuming {chunks} chunks exceeds available {self._avail[layer]}"
            )
        self.capacity[layer] -= chunks
        self.m_peak[layer] -= chunks
        self._avail[layer] = max(0, min(self.capacity[layer], self.m_peak[layer]))

    def release(self, layer: int, chunks: int) -> None:
        """Return chunks to a layer (local-improvement repacking)."""
        self.capacity[layer] += chunks
        self.m_peak[layer] += chunks
        self._avail[layer] = max(0, min(self.capacity[layer], self.m_peak[layer]))

    def scale_capacity(self, factor: float, layers: Optional[Sequence[int]] = None) -> bool:
        """Soft thresholding: relax remaining capacities (C4 tier 1).

        ``layers`` scopes the relaxation to the window that needs rescuing
        (the quota is still charged globally); ``None`` relaxes every layer.
        Scoping keeps a soft round fired by one window from silently
        changing the budgets every downstream window observes — which is
        what lets the window-reuse fingerprint stay phase-free.

        Returns False when the global relaxation quota is exhausted.
        """
        if self.soft_rounds_used >= self.max_soft_rounds:
            return False
        if layers is None:
            self.capacity = [int(c * factor) for c in self.capacity]
            self._avail = [max(0, min(c, m)) for c, m in zip(self.capacity, self.m_peak)]
        else:
            for layer in layers:
                self.capacity[layer] = int(self.capacity[layer] * factor)
                self._avail[layer] = max(0, min(self.capacity[layer], self.m_peak[layer]))
        self.soft_rounds_used += 1
        return True


def greedy_assign(
    weight: WeightInfo,
    budgets: Budgets,
    *,
    candidates: Optional[Sequence[int]] = None,
    commit: bool = True,
) -> Optional[Dict[int, int]]:
    """Place one weight's chunks latest-first; None if it does not fit.

    With ``commit=False`` the budgets are left untouched (feasibility probe).
    """
    layers = sorted(candidates if candidates is not None else weight.candidates, reverse=True)
    remaining = weight.total_chunks
    assignment: Dict[int, int] = {}
    for layer in layers:
        if remaining == 0:
            break
        take = min(remaining, budgets.available(layer))
        if take > 0:
            assignment[layer] = take
            remaining -= take
    if remaining > 0:
        return None
    if commit:
        for layer, chunks in assignment.items():
            budgets.consume(layer, chunks)
    return assignment


def greedy_schedule(
    problem: OpgProblem,
    weights: Sequence[WeightInfo],
    budgets: Budgets,
    *,
    improvement_passes: int = 2,
) -> Dict[str, Optional[Dict[int, int]]]:
    """Schedule ``weights`` (consumption order) greedily against ``budgets``.

    Returns weight name -> assignment, or None where the weight must be
    preloaded.  Budgets are committed for placed weights.  After the first
    pass, ``improvement_passes`` rounds of re-packing try to push each
    weight's chunks later given everyone else's placement (shrinking total
    loading distance toward the optimum).
    """
    out: Dict[str, Optional[Dict[int, int]]] = {}
    ordered = sorted(weights, key=lambda w: w.consumer_layer)
    for w in ordered:
        if w.forced_preload:
            out[w.name] = None
            continue
        out[w.name] = greedy_assign(w, budgets)
    by_name = {w.name: w for w in weights}
    for _ in range(improvement_passes):
        improved = False
        for name, assignment in out.items():
            if not assignment:
                continue
            w = by_name[name]
            # Temporarily release this weight's chunks and re-pack.
            for layer, chunks in assignment.items():
                budgets.release(layer, chunks)
            better = greedy_assign(w, budgets)
            if better is None:  # should not happen; restore
                for layer, chunks in assignment.items():
                    budgets.consume(layer, chunks)
                continue
            if min(better) > min(assignment):
                out[name] = better
                improved = True
            elif better != assignment:
                # Same distance; keep the re-pack (it is committed already).
                out[name] = better
        if not improved:
            break
    return out
