"""A small CP-SAT-style constraint model (OR-Tools substitute).

Implements the modelling subset the OPG formulation needs (see DESIGN.md):

- bounded integer variables;
- linear constraints ``lo <= sum(c_i * v_i) <= hi`` with non-negative
  coefficients (all OPG sums are over non-negative chunk counts);
- implication constraints ``(x >= k) => (z <= bound)`` (constraint C1);
- a linear minimisation objective.

The solver lives in :mod:`repro.opg.cpsat.search`; propagation in
:mod:`repro.opg.cpsat.propagation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.opg.cpsat.stats import SolverStats


class SolveStatus(enum.Enum):
    """Solver outcome, mirroring OR-Tools CP-SAT statuses (paper Table 4)."""

    OPTIMAL = "OPTIMAL"
    FEASIBLE = "FEASIBLE"
    INFEASIBLE = "INFEASIBLE"
    UNKNOWN = "UNKNOWN"


@dataclass
class IntVar:
    """A bounded integer decision variable."""

    index: int
    lo: int
    hi: int
    name: str
    #: Value the search tries first (decision hint, like CP-SAT's AddHint).
    hint: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"{self.name}: empty domain [{self.lo}, {self.hi}]")


@dataclass
class LinearConstraint:
    """``lo <= sum(coef * var) <= hi`` with coef > 0."""

    terms: List[Tuple[int, int]]  # (var index, coefficient)
    lo: int
    hi: int
    name: str = ""


@dataclass
class Implication:
    """``(vars[cond] >= cond_ge) => (vars[then] <= then_ub)``."""

    cond: int
    cond_ge: int
    then: int
    then_ub: int
    name: str = ""


@dataclass(frozen=True)
class ModelIndex:
    """Var→constraint watch lists, built once at :meth:`CpModel.freeze` time.

    Drives the dirty-queue incremental propagator: when variable ``v``'s
    bounds change, only ``var_linears[v]`` / ``var_implications[v]`` need
    re-evaluation instead of every constraint in the model.
    """

    #: var index -> ids into ``model.linears`` mentioning the var.
    var_linears: Tuple[Tuple[int, ...], ...]
    #: var index -> ids into ``model.implications`` watching the var
    #: (as condition or consequent).
    var_implications: Tuple[Tuple[int, ...], ...]
    #: Variables appearing in the objective (hoisted out of branching).
    obj_vars: FrozenSet[int]
    #: var index -> objective coefficient (for incremental bound updates).
    obj_coef: Dict[int, int]


class CpModel:
    """Container for variables, constraints, and the objective."""

    def __init__(self) -> None:
        self.variables: List[IntVar] = []
        self.linears: List[LinearConstraint] = []
        self.implications: List[Implication] = []
        #: Objective terms (var index, coefficient); minimised.  Coefficients
        #: may be negative (maximising a variable).
        self.objective: List[Tuple[int, int]] = []
        self.objective_offset: int = 0
        self._index: Optional[ModelIndex] = None

    # ---------------------------------------------------------------- build
    def new_int(self, lo: int, hi: int, name: str, *, hint: Optional[int] = None) -> IntVar:
        var = IntVar(index=len(self.variables), lo=lo, hi=hi, name=name, hint=hint)
        self.variables.append(var)
        self._index = None
        return var

    def add_linear(
        self,
        terms: Sequence[Tuple[IntVar, int]],
        *,
        lo: int = 0,
        hi: int,
        name: str = "",
    ) -> LinearConstraint:
        """Add ``lo <= sum(coef * var) <= hi``; coefficients must be positive."""
        idx_terms = []
        for var, coef in terms:
            if coef <= 0:
                raise ValueError(f"{name}: coefficient must be positive, got {coef}")
            idx_terms.append((var.index, coef))
        if lo > hi:
            raise ValueError(f"{name}: lo > hi")
        con = LinearConstraint(terms=idx_terms, lo=lo, hi=hi, name=name)
        self.linears.append(con)
        self._index = None
        return con

    def add_sum_eq(self, terms: Sequence[Tuple[IntVar, int]], value: int, *, name: str = "") -> LinearConstraint:
        return self.add_linear(terms, lo=value, hi=value, name=name)

    def add_sum_le(self, terms: Sequence[Tuple[IntVar, int]], bound: int, *, name: str = "") -> LinearConstraint:
        return self.add_linear(terms, lo=0, hi=bound, name=name)

    def add_implication(self, cond: IntVar, cond_ge: int, then: IntVar, then_ub: int, *, name: str = "") -> Implication:
        """``(cond >= cond_ge) => (then <= then_ub)`` — OPG constraint C1."""
        imp = Implication(cond=cond.index, cond_ge=cond_ge, then=then.index, then_ub=then_ub, name=name)
        self.implications.append(imp)
        self._index = None
        return imp

    def minimize(self, terms: Sequence[Tuple[IntVar, int]], *, offset: int = 0) -> None:
        """Set the linear objective (replaces any previous objective)."""
        self.objective = [(var.index, coef) for var, coef in terms]
        self.objective_offset = offset
        self._index = None

    def freeze(self) -> ModelIndex:
        """Build (or return the cached) var→constraint index.

        Any later mutation of the model invalidates the cache, so callers
        may freeze eagerly and keep building.
        """
        if self._index is not None:
            return self._index
        n = len(self.variables)
        var_linears: List[List[int]] = [[] for _ in range(n)]
        for cid, con in enumerate(self.linears):
            for idx, _coef in con.terms:
                var_linears[idx].append(cid)
        var_implications: List[List[int]] = [[] for _ in range(n)]
        for iid, imp in enumerate(self.implications):
            var_implications[imp.cond].append(iid)
            if imp.then != imp.cond:
                var_implications[imp.then].append(iid)
        obj_coef: Dict[int, int] = {}
        for idx, coef in self.objective:
            obj_coef[idx] = obj_coef.get(idx, 0) + coef
        self._index = ModelIndex(
            var_linears=tuple(tuple(ids) for ids in var_linears),
            var_implications=tuple(tuple(ids) for ids in var_implications),
            obj_vars=frozenset(idx for idx, _ in self.objective),
            obj_coef=obj_coef,
        )
        return self._index

    # -------------------------------------------------------------- queries
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.linears) + len(self.implications)

    def objective_value(self, values: Sequence[int]) -> int:
        return self.objective_offset + sum(coef * values[idx] for idx, coef in self.objective)

    def validate_assignment(self, values: Sequence[int]) -> List[str]:
        """Return human-readable violations of ``values`` (empty if feasible)."""
        problems: List[str] = []
        if len(values) != len(self.variables):
            return [f"expected {len(self.variables)} values, got {len(values)}"]
        for var in self.variables:
            v = values[var.index]
            if not var.lo <= v <= var.hi:
                problems.append(f"{var.name}={v} outside [{var.lo}, {var.hi}]")
        for con in self.linears:
            total = sum(coef * values[idx] for idx, coef in con.terms)
            if not con.lo <= total <= con.hi:
                problems.append(f"{con.name or 'linear'}: {total} not in [{con.lo}, {con.hi}]")
        for imp in self.implications:
            if values[imp.cond] >= imp.cond_ge and values[imp.then] > imp.then_ub:
                problems.append(
                    f"{imp.name or 'implication'}: cond={values[imp.cond]} but then={values[imp.then]} > {imp.then_ub}"
                )
        return problems


@dataclass
class Solution:
    """Result of a solve call."""

    status: SolveStatus
    values: Optional[List[int]] = None
    objective: Optional[int] = None
    #: Search statistics (headline counters, kept for compatibility).
    nodes_explored: int = 0
    propagations: int = 0
    wall_time_s: float = 0.0
    #: Full observability: propagations by constraint kind, queue high-water
    #: mark, time in propagate / branch / bound (None for legacy callers
    #: that construct Solutions by hand).
    stats: Optional[SolverStats] = field(default=None, repr=False)

    @property
    def feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value_of(self, var: IntVar) -> int:
        if self.values is None:
            raise RuntimeError("no solution values available")
        return self.values[var.index]
