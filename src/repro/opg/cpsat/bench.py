"""Solver microbenchmark: synthetic OPG windows and throughput measurement.

``build_window_model`` reproduces the exact shape ``LcOpgSolver._cp_window``
emits — per-(weight, layer) chunk variables over interval candidate sets,
per-weight release variables, C0 completeness sums, C1 loading-distance
implications, C3 per-layer capacity sums, and the total-loading-distance
objective — so solver throughput measured here tracks the production
workload.

``run_throughput_benchmark`` solves a fixed workload set with the
production :class:`CpSolver` (bitset engine), the same solver on the PR-5
dirty-queue engine, and the seed :class:`NaiveCpSolver` under identical
time/node budgets, reporting nodes/sec plus windows-to-OPTIMAL per solver.
``benchmarks/test_solver_throughput.py`` writes the result to
``results/BENCH_solver.json`` so future PRs can see the trajectory: the
headline ``speedup_nodes_per_sec`` keeps its historical meaning
(production engine vs the seed solver) and ``speedup_vs_queue`` isolates
this round's bitset-engine gain.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.opg.cpsat.model import CpModel
from repro.opg.cpsat.naive import NaiveCpSolver
from repro.opg.cpsat.search import CpSolver

#: The benchmark workload: (n_weights, n_layers, per-layer capacity, seed).
#: Sized like the Table 4 models' rolling windows (small, mid, large), plus
#: two production-scale entries: the period-aware window partition makes a
#: transformer window span two block periods, i.e. 32+ weights, so the
#: 32/48-weight rows are the shapes the compile path actually solves.
WORKLOAD: List[Tuple[int, int, int, int]] = [
    (6, 10, 6, 11),
    (8, 14, 6, 23),
    (12, 20, 8, 37),
    (16, 26, 9, 53),
    (20, 32, 10, 71),
    (32, 48, 10, 91),
    (48, 64, 12, 101),
]


def build_window_model(
    n_weights: int,
    n_layers: int,
    cap: int,
    seed: int = 0,
    *,
    with_hints: bool = True,
) -> CpModel:
    """One synthetic OPG window as a CpModel (see module docstring).

    ``with_hints`` mirrors production (LC-OPG always seeds EDF/greedy
    hints); pass False to benchmark the raw search.
    """
    rng = random.Random(seed)
    model = CpModel()
    by_layer: Dict[int, List[Tuple[object, int]]] = {}
    z_vars = []
    offset = 0
    remaining_cap = {l: cap for l in range(n_layers)}
    for w in range(n_weights):
        consumer = rng.randint(min(5, n_layers - 1), n_layers - 1)
        lookback = rng.randint(3, 7)
        candidates = list(range(max(0, consumer - lookback), consumer))
        aggregate = sum(remaining_cap[l] for l in candidates)
        if aggregate <= 0:
            continue  # candidate span exhausted: keep the workload feasible
        total = rng.randint(1, min(12, aggregate))
        # Earliest-fit packing against leftover capacity (EDF-flavoured):
        # always computed as the feasibility witness, attached as decision
        # hints only when ``with_hints`` (mirroring production LC-OPG).
        packing: Dict[int, int] = {}
        need = total
        for l in candidates:
            if need <= 0:
                break
            take = min(need, remaining_cap[l])
            if take > 0:
                packing[l] = take
                remaining_cap[l] -= take
                need -= take
        hint = packing if with_hints else {}
        terms = []
        for l in candidates:
            x = model.new_int(
                0, min(total, cap), f"x[{w},{l}]", hint=hint.get(l, 0) if hint else None
            )
            terms.append((x, 1))
            by_layer.setdefault(l, []).append((x, 1))
        z = model.new_int(
            min(candidates),
            consumer,
            f"z[{w}]",
            hint=min(hint) if hint else None,
        )
        z_vars.append(z)
        model.add_sum_eq(terms, total, name=f"C0[{w}]")
        for (x, _), l in zip(terms, candidates):
            model.add_implication(x, 1, z, l, name=f"C1[{w},{l}]")
        offset += consumer
    for l, terms in by_layer.items():
        model.add_sum_le(terms, cap, name=f"C3[{l}]")
    model.minimize([(z, -1) for z in z_vars], offset=offset)
    return model


def measure_solver(
    solver_name: str,
    *,
    time_limit_s: float = 3.0,
    max_nodes: int = 60_000,
    workload: Optional[List[Tuple[int, int, int, int]]] = None,
) -> Dict[str, object]:
    """Solve the workload with one solver; aggregate throughput stats.

    ``solver_name`` is "trail" (production CpSolver, bitset engine),
    "queue" (CpSolver on the PR-5 dirty-queue engine), or "naive"
    (the seed NaiveCpSolver).
    """
    factory = {
        "trail": CpSolver,
        "queue": lambda **kw: CpSolver(engine="queue", **kw),
        "naive": NaiveCpSolver,
    }[solver_name]
    windows = []
    total_nodes = 0
    total_wall = 0.0
    optimal = 0
    for n_weights, n_layers, cap, seed in workload or WORKLOAD:
        model = build_window_model(n_weights, n_layers, cap, seed)
        solution = factory(time_limit_s=time_limit_s, max_nodes=max_nodes).solve(model)
        sstats = solution.stats
        total_nodes += sstats.nodes
        total_wall += sstats.wall_time_s
        if solution.status.value == "OPTIMAL":
            optimal += 1
        windows.append(
            {
                "n_weights": n_weights,
                "n_layers": n_layers,
                "status": solution.status.value,
                "objective": solution.objective,
                **sstats.as_dict(),
            }
        )
    return {
        "solver": solver_name,
        "windows": windows,
        "total_nodes": total_nodes,
        "total_wall_s": round(total_wall, 6),
        "nodes_per_sec": round(total_nodes / total_wall, 1) if total_wall > 0 else 0.0,
        "windows_to_optimal": optimal,
    }


def run_throughput_benchmark(
    *, time_limit_s: float = 3.0, max_nodes: int = 60_000
) -> Dict[str, object]:
    """Three-way engine comparison under identical budgets (BENCH_solver.json).

    The headline ``speedup_nodes_per_sec`` is the geometric mean of the
    per-window nodes/sec ratios of the production solver over the seed
    solver — each window counts equally, so one deep-propagation window
    cannot dominate the summary the way a wall-time-weighted aggregate
    would.  ``speedup_vs_queue`` is the same geo-mean against the PR-5
    dirty-queue engine, isolating this round's bitset gain.
    ``speedup_aggregate`` (total nodes / total wall, trail over naive) is
    reported alongside.
    """
    trail = measure_solver("trail", time_limit_s=time_limit_s, max_nodes=max_nodes)
    queue = measure_solver("queue", time_limit_s=time_limit_s, max_nodes=max_nodes)
    naive = measure_solver("naive", time_limit_s=time_limit_s, max_nodes=max_nodes)
    per_window = []
    product = 1.0
    product_q = 1.0
    for t, q, n in zip(trail["windows"], queue["windows"], naive["windows"]):
        ratio = t["nodes_per_sec"] / n["nodes_per_sec"] if n["nodes_per_sec"] else 0.0
        ratio_q = t["nodes_per_sec"] / q["nodes_per_sec"] if q["nodes_per_sec"] else 0.0
        per_window.append(
            {
                "n_weights": t["n_weights"],
                "trail_nodes_per_sec": t["nodes_per_sec"],
                "queue_nodes_per_sec": q["nodes_per_sec"],
                "naive_nodes_per_sec": n["nodes_per_sec"],
                "speedup": round(ratio, 2),
                "speedup_vs_queue": round(ratio_q, 2),
            }
        )
        product *= max(ratio, 1e-9)
        product_q *= max(ratio_q, 1e-9)
    geomean = product ** (1.0 / len(per_window)) if per_window else 0.0
    geomean_q = product_q ** (1.0 / len(per_window)) if per_window else 0.0
    naive_nps = naive["nodes_per_sec"] or 1.0
    return {
        "workload": [
            {"n_weights": w, "n_layers": l, "cap": c, "seed": s} for w, l, c, s in WORKLOAD
        ],
        "budgets": {"time_limit_s": time_limit_s, "max_nodes": max_nodes},
        "trail": trail,
        "queue": queue,
        "naive": naive,
        "per_window_speedup": per_window,
        "speedup_nodes_per_sec": round(geomean, 2),
        "speedup_vs_queue": round(geomean_q, 2),
        "speedup_aggregate": round(trail["nodes_per_sec"] / naive_nps, 2),
    }
