"""Bitset propagation engine: packed watcher bitsets + resident sums.

The round-2 raw-speed engine behind ``CpSolver(engine="bitset")``.  The
PR-5 dirty-queue engine (:class:`repro.opg.cpsat.propagation.
IncrementalPropagator`) already made propagation O(affected constraints);
profiling shows the remaining per-node cost is *inside* each constraint
re-evaluation — every ``_prop_linear`` re-sums its terms from scratch, and
the deque/bytearray dirty set pays per-watcher Python iteration on every
tightening.  This engine removes both:

- **Resident constraint sums.**  ``csum_lo[c] = Σ coef·lo`` and
  ``csum_hi[c] = Σ coef·hi`` live alongside the domains and are updated by
  the same trail operations that move a bound (and reversed by undo), so a
  linear re-evaluation is two subtractions plus a width check per term —
  no O(terms) re-sum, ever.  The root-node values are initialised in one
  vectorised ``numpy.add.reduceat`` over the CSR term arrays.
- **Packed uint64 bitsets for watcher state.**  Each variable carries a
  precomputed constraint mask (bit ``c`` = linear ``c``, bit
  ``n_linears + j`` = implication ``j``); a tightening marks all watchers
  dirty with ONE ``dirty |= mask`` word-parallel OR instead of a Python
  loop with membership checks.  The drain pops lowest-set-bits, so
  constraints re-evaluate in ascending id order — a different order than
  the FIFO queue, which is fine because bounds propagation is confluent:
  both engines stop at the same unique fixpoint (this is what keeps plans
  byte-identical with the engine toggled, see DESIGN.md).
- **An unassigned-variable bitset for branching.**  Variable selection
  (smallest domain, objective vars first, lowest index on ties) walks only
  the set bits of ``unassigned & obj_mask`` (then ``unassigned``) instead
  of scanning every variable, with an early exit at width 1 — the minimum
  an unassigned variable can have, so the first hit wins every tie exactly
  like the full ascending scan does.

Domains are packed int64 buffers (``array('q')``): scalar reads stay as
cheap as lists for the propagation cascade while exposing zero-copy
``numpy.frombuffer`` views for the vectorised freeze-time initialisation.
A full-sweep numpy evaluation per node was prototyped and rejected: at
OPG window sizes (tens of constraints, cascades touching a handful) the
fixed per-ufunc cost exceeds the entire scalar cascade — the measured
tradeoff is recorded in DESIGN.md.

One object implements both the Trail API (``mark`` / ``undo_to`` /
``set_lo`` / ``set_hi`` / ``lower_bound`` / ``entries``) and the
propagator API (``propagate_all`` / ``propagate_from`` / ``abandon``), so
the search loop in :mod:`repro.opg.cpsat.search` runs unchanged over
either engine.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Tuple

import numpy as np

from repro.opg.cpsat.model import CpModel
from repro.opg.cpsat.stats import PropagationStats


class BitsetState:
    """Trail + propagator over packed bitsets and resident constraint sums."""

    __slots__ = (
        "lo",
        "hi",
        "entries",
        "lower_bound",
        "obj_coef",
        "n_linears",
        "con_lo",
        "con_hi",
        "con_terms",
        "con_unit",
        "csum_lo",
        "csum_hi",
        "var_lin",
        "var_lin_unit",
        "imps",
        "watch_lo_mask",
        "watch_hi_mask",
        "var_bit",
        "dirty",
        "unassigned",
        "obj_mask",
        "_all_dirty",
        "epoch",
        "lo_stamp",
        "hi_stamp",
    )

    def __init__(self, model: CpModel) -> None:
        index = model.freeze()
        n_vars = len(model.variables)
        nl = len(model.linears)
        ni = len(model.implications)
        self.n_linears = nl

        self.lo = array("q", (v.lo for v in model.variables))
        self.hi = array("q", (v.hi for v in model.variables))

        obj_coef = [0] * n_vars
        for idx, coef in index.obj_coef.items():
            obj_coef[idx] = coef
        self.obj_coef = obj_coef
        bound = model.objective_offset
        for idx, coef in index.obj_coef.items():
            bound += coef * (self.lo[idx] if coef > 0 else self.hi[idx])
        self.lower_bound = bound
        self.entries: List[Tuple[int, int, int]] = []

        # Linears flattened: bounds, term tuples, per-var membership, and the
        # resident sums (vectorised init over the CSR term arrays).
        self.con_lo = array("q", (c.lo for c in model.linears))
        self.con_hi = array("q", (c.hi for c in model.linears))
        self.con_terms: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(c.terms) for c in model.linears
        )
        # All-unit-coefficient constraints (every OPG sum) take a divide-free
        # fast path over a flat index tuple; mixed coefficients fall back.
        self.con_unit: Tuple[Optional[Tuple[int, ...]], ...] = tuple(
            tuple(idx for idx, _ in c.terms)
            if all(coef == 1 for _, coef in c.terms)
            else None
            for c in model.linears
        )
        var_lin: List[List[Tuple[int, int]]] = [[] for _ in range(n_vars)]
        for cid, con in enumerate(model.linears):
            for idx, coef in con.terms:
                var_lin[idx].append((cid, coef))
        self.var_lin = tuple(tuple(t) for t in var_lin)
        # Unit-coefficient membership (every OPG variable): the resident-sum
        # maintenance in set_lo/set_hi/undo_to walks a flat cid tuple and
        # adds the raw delta — no unpack, no multiply.  None where some
        # membership has coef != 1 (falls back to the general pairs).
        self.var_lin_unit: Tuple[Optional[Tuple[int, ...]], ...] = tuple(
            tuple(cid for cid, _ in pairs)
            if all(c == 1 for _, c in pairs)
            else None
            for pairs in self.var_lin
        )
        if nl:
            term_var = np.fromiter(
                (idx for c in model.linears for idx, _ in c.terms), dtype=np.int64
            )
            term_coef = np.fromiter(
                (coef for c in model.linears for _, coef in c.terms), dtype=np.int64
            )
            ptr = np.zeros(nl, dtype=np.int64)
            np.cumsum([len(c.terms) for c in model.linears[:-1]], out=ptr[1:])
            lo_np = np.frombuffer(self.lo, dtype=np.int64)
            hi_np = np.frombuffer(self.hi, dtype=np.int64)
            self.csum_lo = array(
                "q", np.add.reduceat(term_coef * lo_np[term_var], ptr).tolist()
            )
            self.csum_hi = array(
                "q", np.add.reduceat(term_coef * hi_np[term_var], ptr).tolist()
            )
        else:
            self.csum_lo = array("q")
            self.csum_hi = array("q")

        self.imps: Tuple[Tuple[int, int, int, int], ...] = tuple(
            (i.cond, i.cond_ge, i.then, i.then_ub) for i in model.implications
        )

        # Packed watcher bitsets: bit c = linear c, bit nl + j = implication
        # j.  Bounds only ever tighten, so an implication can newly fire
        # ONLY on a lower-bound change (rule 1 when lo[cond] crosses
        # cond_ge, rule 2 when lo[then] crosses then_ub — the hi sides of
        # both guards can only turn false).  Upper-bound changes therefore
        # dirty just the linears: ``watch_mask`` is per side, and set_hi
        # ORs a strictly smaller mask than the queue engine's watch lists.
        lo_masks = [0] * n_vars
        hi_masks = [0] * n_vars
        for cid, con in enumerate(model.linears):
            bit = 1 << cid
            for idx, _ in con.terms:
                lo_masks[idx] |= bit
                hi_masks[idx] |= bit
        for j, imp in enumerate(model.implications):
            bit = 1 << (nl + j)
            lo_masks[imp.cond] |= bit
            lo_masks[imp.then] |= bit
        self.watch_lo_mask = lo_masks
        self.watch_hi_mask = hi_masks
        self.var_bit = [1 << i for i in range(n_vars)]
        self.dirty = 0
        self._all_dirty = (1 << (nl + ni)) - 1

        un = 0
        for i in range(n_vars):
            if self.lo[i] < self.hi[i]:
                un |= 1 << i
        self.unassigned = un
        # Entry dedup epochs: the search bumps ``epoch`` once per node (in
        # ``undo_to``); within a node only the FIRST bound change per
        # (variable, side) needs a trail entry — it already holds the value
        # undo must restore — so cascades that tighten the same bound in
        # several steps log it once.
        self.epoch = 0
        self.lo_stamp = [-1] * n_vars
        self.hi_stamp = [-1] * n_vars
        obj_mask = 0
        for idx in index.obj_vars:
            obj_mask |= 1 << idx
        self.obj_mask = obj_mask

    # ------------------------------------------------------------ trail API
    def mark(self) -> int:
        return len(self.entries)

    def set_lo(self, idx: int, value: int) -> None:
        old = self.lo[idx]
        if self.lo_stamp[idx] != self.epoch:
            self.lo_stamp[idx] = self.epoch
            self.entries.append((idx, 0, old))
        self.lo[idx] = value
        delta = value - old
        coef = self.obj_coef[idx]
        if coef > 0:
            self.lower_bound += coef * delta
        unit = self.var_lin_unit[idx]
        if unit is not None:
            csum_lo = self.csum_lo
            for cid in unit:
                csum_lo[cid] += delta
        else:
            for cid, c in self.var_lin[idx]:
                self.csum_lo[cid] += c * delta
        self.dirty |= self.watch_lo_mask[idx]
        if value >= self.hi[idx]:
            self.unassigned &= ~self.var_bit[idx]

    def set_hi(self, idx: int, value: int) -> None:
        old = self.hi[idx]
        if self.hi_stamp[idx] != self.epoch:
            self.hi_stamp[idx] = self.epoch
            self.entries.append((idx, 1, old))
        self.hi[idx] = value
        delta = value - old
        coef = self.obj_coef[idx]
        if coef < 0:
            self.lower_bound += coef * delta
        unit = self.var_lin_unit[idx]
        if unit is not None:
            csum_hi = self.csum_hi
            for cid in unit:
                csum_hi[cid] += delta
        else:
            for cid, c in self.var_lin[idx]:
                self.csum_hi[cid] += c * delta
        self.dirty |= self.watch_hi_mask[idx]
        if value <= self.lo[idx]:
            self.unassigned &= ~self.var_bit[idx]

    def undo_to(self, mark: int) -> None:
        # One undo per node pop: bump the dedup epoch so the next node's
        # bound changes get fresh trail entries.
        self.epoch += 1
        entries = self.entries
        lo, hi = self.lo, self.hi
        obj_coef = self.obj_coef
        csum_lo, csum_hi = self.csum_lo, self.csum_hi
        var_lin = self.var_lin
        var_lin_unit = self.var_lin_unit
        var_bit = self.var_bit
        un = self.unassigned
        bound = self.lower_bound
        while len(entries) > mark:
            idx, which, old = entries.pop()
            unit = var_lin_unit[idx]
            if which == 0:
                delta = old - lo[idx]
                lo[idx] = old
                coef = obj_coef[idx]
                if coef > 0:
                    bound += coef * delta
                if unit is not None:
                    for cid in unit:
                        csum_lo[cid] += delta
                else:
                    for cid, c in var_lin[idx]:
                        csum_lo[cid] += c * delta
            else:
                delta = old - hi[idx]
                hi[idx] = old
                coef = obj_coef[idx]
                if coef < 0:
                    bound += coef * delta
                if unit is not None:
                    for cid in unit:
                        csum_hi[cid] += delta
                else:
                    for cid, c in var_lin[idx]:
                        csum_hi[cid] += c * delta
            if lo[idx] < hi[idx]:
                un |= var_bit[idx]
            else:
                un &= ~var_bit[idx]
        self.lower_bound = bound
        self.unassigned = un

    # ------------------------------------------------------- propagator API
    def propagate_all(self, trail, stats: PropagationStats) -> bool:
        """Root propagation: every constraint starts dirty."""
        self.dirty = self._all_dirty
        return self._drain(stats)

    def propagate_from(self, trail, dirty_vars, stats: PropagationStats) -> bool:
        """Drain the dirt accumulated by set_lo/set_hi since the last drain.

        Unlike the queue engine, seeding is implicit: the trail operations
        that applied the branch already OR'd the branched variable's
        watcher mask into ``dirty``, so the arguments are accepted only for
        API compatibility.
        """
        return self._drain(stats)

    def abandon(self) -> None:
        """Drop pending dirt (the search pruned before propagating)."""
        self.dirty = 0

    def _drain(self, stats: PropagationStats) -> bool:
        n_linears = self.n_linears
        prop_linear = self._prop_linear
        imps = self.imps
        lo, hi = self.lo, self.hi
        set_hi = self.set_hi
        imp_evals = 0
        tightenings = 0
        while True:
            bits = self.dirty
            if not bits:
                stats.implication_props += imp_evals
                stats.tightenings += tightenings
                return True
            low = bits & -bits
            cid = low.bit_length() - 1
            if cid < n_linears:
                ok = prop_linear(cid, stats)
                # Clear after processing: the linear is at its local
                # fixpoint, so self-dirt from its own tightenings is
                # dropped (the queue engine's ``skip_cid``); dirt it put
                # on OTHER constraints stays.
                self.dirty &= ~low
                if not ok:
                    self.dirty = 0
                    stats.implication_props += imp_evals
                    stats.tightenings += tightenings
                    return False
                continue
            # Implications inline: firing calls set_hi, which dirties only
            # linears (implications watch lower bounds), so an implication
            # can never re-dirty itself or another implication — clear
            # its bit up front.
            self.dirty = bits & ~low
            cond, cond_ge, then, then_ub = imps[cid - n_linears]
            imp_evals += 1
            # cond >= cond_ge guaranteed -> then <= then_ub
            if lo[cond] >= cond_ge and then_ub < hi[then]:
                set_hi(then, then_ub)
                tightenings += 1
                if lo[then] > then_ub:
                    self.dirty = 0
                    stats.implication_props += imp_evals
                    stats.tightenings += tightenings
                    return False
            # then must exceed then_ub -> cond must stay below cond_ge
            if lo[then] > then_ub and hi[cond] >= cond_ge:
                set_hi(cond, cond_ge - 1)
                tightenings += 1
                if lo[cond] >= cond_ge:
                    self.dirty = 0
                    stats.implication_props += imp_evals
                    stats.tightenings += tightenings
                    return False

    def _prop_linear(self, cid: int, stats: PropagationStats) -> bool:
        stats.linear_props += 1
        csum_lo, csum_hi = self.csum_lo, self.csum_hi
        con_lo = self.con_lo[cid]
        con_hi = self.con_hi[cid]
        s_lo = csum_lo[cid]
        s_hi = csum_hi[cid]
        # Entailment: the sum's whole range fits inside [con_lo, con_hi],
        # so no completion violates the constraint and nothing can tighten
        # (every term width is at most s_hi - s_lo <= both slacks).  This
        # O(1) exit swallows most capacity-sum re-evaluations without
        # touching the terms.
        if s_lo >= con_lo and s_hi <= con_hi:
            return True
        if s_lo > con_hi or s_hi < con_lo:
            return False
        unit = self.con_unit[cid]
        if unit is None:
            return self._prop_linear_general(cid, stats)
        lo, hi = self.lo, self.hi
        # Detection pass: a unit term can tighten iff its width exceeds a
        # slack, i.e. exceeds min(slack_hi, slack_lo).  One comparison per
        # term with no writes — most re-evaluations are already at
        # fixpoint and exit here without paying the hoisted setup below.
        slack_hi = con_hi - s_lo
        slack_lo = s_hi - con_lo
        m = slack_hi if slack_hi < slack_lo else slack_lo
        for idx in unit:
            if hi[idx] - lo[idx] > m:
                break
        else:
            return True
        # Divide-free hot path: every coefficient is 1 (all OPG sums), with
        # the trail operations inlined over hoisted locals — this loop is
        # the propagation kernel, and attribute traffic per tightening
        # would otherwise dominate it.  ``slack_hi``/``slack_lo`` are the
        # residual slacks — how far a variable may sit above its lower
        # bound (below its upper bound) without the sum leaving
        # [con_lo, con_hi].  They go stale within a pass, which only
        # under-tightens; the outer loop re-passes to the same fixpoint.
        epoch = self.epoch
        lo_stamp, hi_stamp = self.lo_stamp, self.hi_stamp
        entries_append = self.entries.append
        obj_coef = self.obj_coef
        var_lin_unit = self.var_lin_unit
        var_lin = self.var_lin
        watch_lo, watch_hi = self.watch_lo_mask, self.watch_hi_mask
        var_bit = self.var_bit
        bound = self.lower_bound
        un = self.unassigned
        pend = 0
        tight = 0
        ok = True
        while True:
            if s_lo > con_hi or s_hi < con_lo:
                ok = False
                break
            slack_hi = con_hi - s_lo
            slack_lo = s_hi - con_lo
            changed = False
            for idx in unit:
                l = lo[idx]
                h = hi[idx]
                width = h - l
                if width > slack_hi:
                    value = l + slack_hi  # inlined set_hi(idx, value)
                    if hi_stamp[idx] != epoch:
                        hi_stamp[idx] = epoch
                        entries_append((idx, 1, h))
                    hi[idx] = value
                    delta = value - h
                    coef = obj_coef[idx]
                    if coef < 0:
                        bound += coef * delta
                    vu = var_lin_unit[idx]
                    if vu is not None:
                        for c2 in vu:
                            csum_hi[c2] += delta
                    else:
                        for c2, cf in var_lin[idx]:
                            csum_hi[c2] += cf * delta
                    pend |= watch_hi[idx]
                    if value <= l:
                        un &= ~var_bit[idx]
                    h = value
                    width = slack_hi
                    tight += 1
                    changed = True
                if width > slack_lo:
                    value = h - slack_lo  # inlined set_lo(idx, value)
                    if lo_stamp[idx] != epoch:
                        lo_stamp[idx] = epoch
                        entries_append((idx, 0, l))
                    lo[idx] = value
                    delta = value - l
                    coef = obj_coef[idx]
                    if coef > 0:
                        bound += coef * delta
                    vu = var_lin_unit[idx]
                    if vu is not None:
                        for c2 in vu:
                            csum_lo[c2] += delta
                    else:
                        for c2, cf in var_lin[idx]:
                            csum_lo[c2] += cf * delta
                    pend |= watch_lo[idx]
                    if value >= h:
                        un &= ~var_bit[idx]
                    tight += 1
                    changed = True
            if not changed:
                break
            s_lo = csum_lo[cid]
            s_hi = csum_hi[cid]
        self.lower_bound = bound
        self.unassigned = un
        self.dirty |= pend
        stats.tightenings += tight
        return ok

    def _prop_linear_general(self, cid: int, stats: PropagationStats) -> bool:
        """Mixed-coefficient fallback (no OPG constraint takes this path)."""
        lo, hi = self.lo, self.hi
        csum_lo, csum_hi = self.csum_lo, self.csum_hi
        con_lo = self.con_lo[cid]
        con_hi = self.con_hi[cid]
        set_lo, set_hi = self.set_lo, self.set_hi
        terms = self.con_terms[cid]
        tightenings = 0
        while True:
            s_lo = csum_lo[cid]
            s_hi = csum_hi[cid]
            if s_lo > con_hi or s_hi < con_lo:
                stats.tightenings += tightenings
                return False
            slack_hi = con_hi - s_lo
            slack_lo = s_hi - con_lo
            changed = False
            for idx, coef in terms:
                width = hi[idx] - lo[idx]
                if width == 0:
                    continue
                room = slack_hi if coef == 1 else slack_hi // coef
                if width > room:
                    set_hi(idx, lo[idx] + room)
                    width = room
                    tightenings += 1
                    changed = True
                room = slack_lo if coef == 1 else slack_lo // coef
                if width > room:
                    set_lo(idx, hi[idx] - room)
                    tightenings += 1
                    changed = True
            if not changed:
                stats.tightenings += tightenings
                return True

    # --------------------------------------------------------- search hooks
    def select_variable(self) -> Optional[int]:
        """Smallest-domain-first branching variable, or None when assigned.

        Identical choice to ``CpSolver._select_variable``'s full scan —
        objective variables strictly first, then minimum width, lowest
        index on ties — but walking only the set bits of the unassigned
        bitset, with an early exit at width 1 (no unassigned variable can
        be narrower, and ascending bit order makes the first hit the
        lowest-index tie-winner).
        """
        cand = self.unassigned & self.obj_mask
        if not cand:
            cand = self.unassigned
            if not cand:
                return None
        lo, hi = self.lo, self.hi
        best_idx = -1
        best_width = 1 << 62
        while cand:
            low = cand & -cand
            idx = low.bit_length() - 1
            cand ^= low
            width = hi[idx] - lo[idx]
            if width < best_width:
                best_width = width
                best_idx = idx
                if width == 1:
                    break
        return best_idx
