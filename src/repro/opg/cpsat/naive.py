"""The seed copy-based branch-and-bound solver, preserved verbatim-in-spirit.

This is the pre-trail architecture: ``Domains.copy()`` per child node and a
full constraint sweep to fixpoint after every branch.  It stays in the tree
for two jobs:

- the **differential-test oracle**: the trail solver must agree with it
  (and with brute force) on status and optimal objective;
- the **benchmark baseline**: ``benchmarks/test_solver_throughput.py``
  measures the trail solver's nodes/sec against this one and records the
  ratio in ``BENCH_solver.json``.

Do not use it in production paths — `repro.opg.cpsat.search.CpSolver` is
strictly faster.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.opg.cpsat.model import CpModel, Solution, SolveStatus
from repro.opg.cpsat.propagation import Domains, objective_lower_bound, propagate
from repro.opg.cpsat.search import CpSolver
from repro.opg.cpsat.stats import SolverStats


class NaiveCpSolver:
    """Copy-based DFS branch-and-bound (the seed architecture)."""

    def __init__(self, *, time_limit_s: float = 10.0, max_nodes: int = 2_000_000) -> None:
        self.time_limit_s = time_limit_s
        self.max_nodes = max_nodes

    def solve(self, model: CpModel) -> Solution:
        start = time.perf_counter()
        deadline = start + self.time_limit_s
        root = Domains.from_model(model)
        stats = SolverStats()

        t0 = time.perf_counter()
        ok, props = propagate(model, root)
        stats.absorb(props)
        stats.time_propagate_s += time.perf_counter() - t0
        if not ok:
            stats.wall_time_s = time.perf_counter() - start
            return Solution(status=SolveStatus.INFEASIBLE, wall_time_s=stats.wall_time_s, stats=stats)
        root_bound = objective_lower_bound(model, root) if model.objective else None

        best_values: Optional[List[int]] = None
        best_obj: Optional[int] = None
        proven_by_bound = False
        timed_out = False
        node_budget_hit = False

        # Iterative DFS: stack of full domain-state copies to explore.
        stack: List[Domains] = [root]
        while stack:
            if time.perf_counter() > deadline:
                timed_out = True
                break
            if stats.nodes >= self.max_nodes:
                node_budget_hit = True
                break
            domains = stack.pop()
            stats.nodes += 1

            if best_obj is not None and model.objective:
                t0 = time.perf_counter()
                bound = objective_lower_bound(model, domains)
                stats.time_bound_s += time.perf_counter() - t0
                if bound >= best_obj:
                    continue  # cannot improve

            t0 = time.perf_counter()
            branch_var = self._select_variable(model, domains)
            stats.time_branch_s += time.perf_counter() - t0
            if branch_var is None:
                values = domains.assignment()
                obj = model.objective_value(values) if model.objective else 0
                if best_obj is None or obj < best_obj:
                    best_obj = obj
                    best_values = values
                    if not model.objective:
                        break  # satisfaction problem: first solution wins
                    if root_bound is not None and obj <= root_bound:
                        proven_by_bound = True
                        break
                continue

            for child_lo, child_hi in reversed(CpSolver._branches(model, domains, branch_var)):
                child = domains.copy()
                child.lo[branch_var] = child_lo
                child.hi[branch_var] = child_hi
                t0 = time.perf_counter()
                ok, props = propagate(model, child)
                stats.absorb(props)
                stats.time_propagate_s += time.perf_counter() - t0
                if ok:
                    stack.append(child)

        stats.wall_time_s = time.perf_counter() - start
        if best_values is None:
            status = SolveStatus.UNKNOWN if (timed_out or node_budget_hit) else SolveStatus.INFEASIBLE
            return Solution(
                status=status,
                nodes_explored=stats.nodes,
                propagations=stats.propagations,
                wall_time_s=stats.wall_time_s,
                stats=stats,
            )
        proven = proven_by_bound or not (timed_out or node_budget_hit)
        status = SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE
        return Solution(
            status=status,
            values=best_values,
            objective=best_obj,
            nodes_explored=stats.nodes,
            propagations=stats.propagations,
            wall_time_s=stats.wall_time_s,
            stats=stats,
        )

    @staticmethod
    def _select_variable(model: CpModel, domains: Domains) -> Optional[int]:
        """Seed behaviour: rebuilds the objective-variable set at every node
        (the cost the trail solver hoists to freeze time)."""
        obj_vars = {idx for idx, _ in model.objective}
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for idx in range(len(domains.lo)):
            width = domains.hi[idx] - domains.lo[idx]
            if width == 0:
                continue
            key = (0 if idx in obj_vars else 1, width)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx
