"""Portfolio branch-and-bound: race alternate heuristics for certificates.

``PortfolioCpSolver`` is a drop-in :class:`CpSolver` replacement (same
``(time_limit_s=, max_nodes=)`` factory signature, same ``solve``) that
runs the canonical search in-process while K-1 *alternate* searches —
most-constrained-first branching and random-restart branching seeded from
the model fingerprint — race in worker processes.

The protocol is certificate-only, which is what keeps plans byte-identical
with the portfolio on or off:

- alternates never contribute solution values; their only output is a
  proven-OPTIMAL objective (a *certificate*), delivered to the canonical
  search through a shared cell;
- the canonical search polls the cell at incumbent updates only.  A
  certificate adds a stop condition — it never steers pruning or variable
  selection — so the canonical tree prefix is identical to the
  portfolio-off search, and the early-stopped incumbent is exactly the
  incumbent that search would have returned (no search improves past a
  proven optimum);
- statuses only upgrade (FEASIBLE -> OPTIMAL when the incumbent meets a
  certificate); values never change.

First-finisher-wins: the first alternate to prove optimality sets the
cell; once the canonical solve returns, outstanding alternates are
cancelled.  Certificates are also published to a bounded module-level
read-through memo keyed by model fingerprint, so periodic windows that
miss the higher-level ``WindowCache`` still start with a known target.

On a single usable core (``os.cpu_count() < 2`` — exactly the CI shape
the sweep benchmarks guard against) the portfolio degrades to the plain
sequential :class:`CpSolver`: racing processes on one core only adds
scheduler overhead.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.opg.cpsat.model import CpModel, Solution
from repro.opg.cpsat.search import CpSolver

#: Cap on the certificate memo (FIFO eviction); each entry is one int.
_MEMO_ENTRIES = 4096

_CERT_MEMO: Dict[Tuple, int] = {}

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def model_fingerprint(model: CpModel) -> Tuple:
    """Structural identity of a model: domains, constraints, objective.

    Hints are included — they steer the canonical search but not the
    *optimal objective value*, strictly speaking; they stay in the key
    anyway so the memo never has to reason about search behaviour.
    """
    return (
        tuple((v.lo, v.hi, v.hint) for v in model.variables),
        tuple((tuple(c.terms), c.lo, c.hi) for c in model.linears),
        tuple((i.cond, i.cond_ge, i.then, i.then_ub) for i in model.implications),
        tuple(model.objective),
        model.objective_offset,
    )


def _remember_certificate(key: Tuple, objective: int) -> None:
    if key not in _CERT_MEMO and len(_CERT_MEMO) >= _MEMO_ENTRIES:
        _CERT_MEMO.pop(next(iter(_CERT_MEMO)))
    _CERT_MEMO[key] = objective


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _warm_worker() -> None:
    """Pool initializer: pay the import cost once per worker, not per window."""
    import repro.opg.cpsat.search  # noqa: F401


def _pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(max_workers=workers, initializer=_warm_worker)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_portfolio_pool() -> None:
    """Tear down the shared alternate pool (tests; atexit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_portfolio_pool)


def _alternate_solve(
    model: CpModel,
    branching: str,
    seed: int,
    time_limit_s: float,
    max_nodes: int,
    engine: str,
) -> Tuple[str, Optional[int]]:
    """Worker-side alternate: solve and return only (status, objective)."""
    solution = CpSolver(
        time_limit_s=time_limit_s,
        max_nodes=max_nodes,
        engine=engine,
        branching=branching,
        seed=seed,
    ).solve(model)
    return solution.status.value, solution.objective


class PortfolioCpSolver:
    """K-way portfolio over branching heuristics (see module docstring).

    ``k`` counts the canonical search: ``k=3`` races two alternates
    (most-constrained, then random-restart) against it.  ``k < 2``, or a
    single usable core, falls back to the plain sequential solver.
    """

    #: Alternate strategy rotation (seeds vary per slot and fingerprint).
    STRATEGIES = ("constrained", "random")

    def __init__(
        self,
        *,
        time_limit_s: float = 10.0,
        max_nodes: int = 2_000_000,
        k: int = 2,
        engine: str = "bitset",
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.time_limit_s = time_limit_s
        self.max_nodes = max_nodes
        self.k = k
        self.engine = engine

    def _alternates(self, fingerprint: Tuple) -> List[Tuple[str, int]]:
        """(branching, seed) per alternate slot; random seeds derive from
        the window fingerprint so reruns race the same portfolio."""
        base = hash(fingerprint) & 0x7FFFFFFF
        slots = []
        for slot in range(self.k - 1):
            strategy = self.STRATEGIES[slot % len(self.STRATEGIES)]
            slots.append((strategy, base + slot))
        return slots

    def solve(self, model: CpModel) -> Solution:
        fingerprint = model_fingerprint(model)
        cell: List[Optional[int]] = [_CERT_MEMO.get(fingerprint)]
        alternates = self._alternates(fingerprint)
        futures = []
        if alternates and cell[0] is None and _usable_cores() >= 2:
            pool = _pool(len(alternates))

            def _note(future) -> None:
                if future.cancelled():
                    return
                exc = future.exception()
                if exc is not None:
                    return  # a dead alternate only costs its certificate
                status, objective = future.result()
                if status == "OPTIMAL" and objective is not None:
                    current = cell[0]
                    cell[0] = objective if current is None else min(current, objective)

            for branching, seed in alternates:
                future = pool.submit(
                    _alternate_solve,
                    model,
                    branching,
                    seed,
                    self.time_limit_s,
                    self.max_nodes,
                    self.engine,
                )
                future.add_done_callback(_note)
                futures.append(future)

        solution = CpSolver(
            time_limit_s=self.time_limit_s,
            max_nodes=self.max_nodes,
            engine=self.engine,
            target_supplier=lambda: cell[0],
        ).solve(model)

        for future in futures:
            future.cancel()
        if solution.status.value == "OPTIMAL" and solution.objective is not None:
            _remember_certificate(fingerprint, solution.objective)
        return solution
