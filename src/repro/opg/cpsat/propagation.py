"""Bounds propagation for the CP model.

Fixed-point propagation over variable domains represented as (lo, hi)
arrays:

- linear constraints tighten each variable against the residual slack of the
  other terms (standard bounds consistency for positive coefficients);
- implications propagate both directions: triggering the condition clamps
  the consequent's upper bound, and a violated consequent forbids the
  condition (``lb(then) > then_ub  =>  cond <= cond_ge - 1``).

Returns ``False`` on a wiped-out domain (dead branch).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.opg.cpsat.model import CpModel


class Domains:
    """Mutable per-variable bounds with copy support for search."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: List[int], hi: List[int]) -> None:
        self.lo = lo
        self.hi = hi

    @classmethod
    def from_model(cls, model: CpModel) -> "Domains":
        return cls([v.lo for v in model.variables], [v.hi for v in model.variables])

    def copy(self) -> "Domains":
        return Domains(list(self.lo), list(self.hi))

    def is_assigned(self, idx: int) -> bool:
        return self.lo[idx] == self.hi[idx]

    def all_assigned(self) -> bool:
        return all(l == h for l, h in zip(self.lo, self.hi))

    def assignment(self) -> List[int]:
        if not self.all_assigned():
            raise RuntimeError("domains not fully assigned")
        return list(self.lo)


def propagate(model: CpModel, domains: Domains, *, max_passes: int = 64) -> Tuple[bool, int]:
    """Run propagation to fixpoint.

    Returns ``(consistent, tightenings)``: consistent is False when some
    domain became empty; tightenings counts bound updates (for stats).
    """
    lo, hi = domains.lo, domains.hi
    tightenings = 0
    for _ in range(max_passes):
        changed = False

        for con in model.linears:
            # Current bounds of the sum.
            sum_lo = 0
            sum_hi = 0
            for idx, coef in con.terms:
                sum_lo += coef * lo[idx]
                sum_hi += coef * hi[idx]
            if sum_lo > con.hi or sum_hi < con.lo:
                return False, tightenings
            for idx, coef in con.terms:
                term_lo = coef * lo[idx]
                term_hi = coef * hi[idx]
                rest_lo = sum_lo - term_lo
                rest_hi = sum_hi - term_hi
                # coef * v <= con.hi - rest_lo  ->  v <= floor((con.hi - rest_lo)/coef)
                new_hi = (con.hi - rest_lo) // coef
                # coef * v >= con.lo - rest_hi  ->  v >= ceil((con.lo - rest_hi)/coef)
                need = con.lo - rest_hi
                new_lo = -((-need) // coef) if need > 0 else lo[idx]
                if new_hi < hi[idx]:
                    hi[idx] = new_hi
                    changed = True
                    tightenings += 1
                if new_lo > lo[idx]:
                    lo[idx] = new_lo
                    changed = True
                    tightenings += 1
                if lo[idx] > hi[idx]:
                    return False, tightenings

        for imp in model.implications:
            # cond >= cond_ge guaranteed -> then <= then_ub
            if lo[imp.cond] >= imp.cond_ge:
                if imp.then_ub < hi[imp.then]:
                    hi[imp.then] = imp.then_ub
                    changed = True
                    tightenings += 1
                    if lo[imp.then] > hi[imp.then]:
                        return False, tightenings
            # then must exceed then_ub -> cond must stay below cond_ge
            if lo[imp.then] > imp.then_ub:
                if hi[imp.cond] >= imp.cond_ge:
                    hi[imp.cond] = imp.cond_ge - 1
                    changed = True
                    tightenings += 1
                    if lo[imp.cond] > hi[imp.cond]:
                        return False, tightenings

        if not changed:
            break
    return True, tightenings


def objective_lower_bound(model: CpModel, domains: Domains) -> int:
    """Optimistic objective value from current bounds."""
    total = model.objective_offset
    for idx, coef in model.objective:
        total += coef * (domains.lo[idx] if coef > 0 else domains.hi[idx])
    return total
