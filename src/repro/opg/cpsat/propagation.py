"""Bounds propagation for the CP model.

Two engines over (lo, hi) domain arrays:

- :func:`propagate` — the reference full-sweep fixpoint: re-scan every
  linear and implication up to ``max_passes`` times.  O(constraints) per
  pass regardless of what changed; kept as the oracle for the naive solver
  and for differential tests.  Its :class:`PropagationStats` now reports
  whether the fixpoint was actually reached, so exhausting ``max_passes``
  is never silently treated as convergence.
- :class:`IncrementalPropagator` — the production engine: a dirty-constraint
  queue seeded from the variables whose bounds changed, driven by the
  var→constraint watch lists frozen on the model
  (:meth:`CpModel.freeze`).  Work is O(affected constraints), and because
  domains only ever shrink the queue provably drains — no pass cap needed.

Both tighten identically:

- linear constraints bound each variable against the residual slack of the
  other terms (bounds consistency for positive coefficients);
- implications propagate both directions: a triggered condition clamps the
  consequent's upper bound, and a violated consequent forbids the condition
  (``lb(then) > then_ub  =>  cond <= cond_ge - 1``).

All mutations in the incremental path go through a :class:`Trail` — a
single undo log over one shared domain store, so backtracking restores a
parent search node in O(changes) instead of copying O(vars) arrays.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.opg.cpsat.model import CpModel
from repro.opg.cpsat.stats import PropagationStats


class Domains:
    """Mutable per-variable bounds with copy support for search."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: List[int], hi: List[int]) -> None:
        self.lo = lo
        self.hi = hi

    @classmethod
    def from_model(cls, model: CpModel) -> "Domains":
        return cls([v.lo for v in model.variables], [v.hi for v in model.variables])

    def copy(self) -> "Domains":
        return Domains(list(self.lo), list(self.hi))

    def is_assigned(self, idx: int) -> bool:
        return self.lo[idx] == self.hi[idx]

    def all_assigned(self) -> bool:
        return all(l == h for l, h in zip(self.lo, self.hi))

    def assignment(self) -> List[int]:
        if not self.all_assigned():
            raise RuntimeError("domains not fully assigned")
        return list(self.lo)


class Trail:
    """Undo log over one shared :class:`Domains` store.

    Search enters a branch by recording the old bound for every tightening
    (``(var, which_bound, old_value)`` entries) and leaves it by popping
    back to a mark — O(changes) instead of the O(vars) ``Domains.copy`` the
    seed solver paid per child node.

    The trail also maintains the objective lower bound *incrementally*:
    given the objective coefficient map, every ``set_lo`` on a
    positive-coefficient variable (resp. ``set_hi`` on a negative one)
    nudges ``lower_bound`` by ``coef * delta``, and undo reverses it — so
    bound pruning is a single comparison at every node instead of an
    O(objective) re-scan.
    """

    __slots__ = ("domains", "entries", "obj_coef", "lower_bound")

    def __init__(
        self,
        domains: Domains,
        *,
        obj_coef: Optional[Dict[int, int]] = None,
        obj_offset: int = 0,
    ) -> None:
        self.domains = domains
        self.entries: List[Tuple[int, int, int]] = []
        self.obj_coef = dict(obj_coef or {})
        bound = obj_offset
        for idx, coef in self.obj_coef.items():
            bound += coef * (domains.lo[idx] if coef > 0 else domains.hi[idx])
        self.lower_bound = bound

    def __len__(self) -> int:
        return len(self.entries)

    def mark(self) -> int:
        return len(self.entries)

    def set_lo(self, idx: int, value: int) -> None:
        old = self.domains.lo[idx]
        self.entries.append((idx, 0, old))
        self.domains.lo[idx] = value
        coef = self.obj_coef.get(idx)
        if coef is not None and coef > 0:
            self.lower_bound += coef * (value - old)

    def set_hi(self, idx: int, value: int) -> None:
        old = self.domains.hi[idx]
        self.entries.append((idx, 1, old))
        self.domains.hi[idx] = value
        coef = self.obj_coef.get(idx)
        if coef is not None and coef < 0:
            self.lower_bound += coef * (value - old)

    def undo_to(self, mark: int) -> None:
        entries = self.entries
        lo, hi = self.domains.lo, self.domains.hi
        obj_coef = self.obj_coef
        while len(entries) > mark:
            idx, which, old = entries.pop()
            coef = obj_coef.get(idx)
            if which == 0:
                if coef is not None and coef > 0:
                    self.lower_bound += coef * (old - lo[idx])
                lo[idx] = old
            else:
                if coef is not None and coef < 0:
                    self.lower_bound += coef * (old - hi[idx])
                hi[idx] = old


class IncrementalPropagator:
    """Dirty-queue propagation over a frozen model.

    Constraint ids: ``[0, n_linears)`` are linears, ``n_linears + j`` is
    implication ``j``.  A bound change on variable ``v`` enqueues exactly
    the constraints watching ``v`` (from :class:`ModelIndex`); each linear
    is re-evaluated to its local fixpoint before moving on, so it never
    re-enqueues itself.
    """

    __slots__ = (
        "model",
        "index",
        "n_linears",
        "_queue",
        "_in_queue",
        "_var_linears",
        "_var_implications",
    )

    def __init__(self, model: CpModel) -> None:
        self.model = model
        self.index = model.freeze()
        self.n_linears = len(model.linears)
        self._queue: deque = deque()
        self._in_queue = bytearray(self.n_linears + len(model.implications))
        # Hot-loop locals: the watch lists are walked once per tightening.
        self._var_linears = self.index.var_linears
        self._var_implications = self.index.var_implications

    # ------------------------------------------------------------- seeding
    def propagate_all(self, trail: Trail, stats: PropagationStats) -> bool:
        """Full propagation (root node): every constraint starts dirty."""
        queue, in_queue = self._queue, self._in_queue
        for cid in range(len(in_queue)):
            queue.append(cid)
            in_queue[cid] = 1
        return self._drain(trail, stats)

    def propagate_from(
        self, trail: Trail, dirty_vars: Sequence[int], stats: PropagationStats
    ) -> bool:
        """Propagate after ``dirty_vars`` had their bounds changed."""
        for var in dirty_vars:
            self._enqueue_watchers(var, -1)
        return self._drain(trail, stats)

    def abandon(self) -> None:
        """No-op (engine API): this engine seeds per ``propagate_from`` call,
        so a pruned node leaves nothing pending to drop."""

    # ------------------------------------------------------------ internals
    def _enqueue_watchers(self, var: int, skip_cid: int) -> None:
        queue, in_queue = self._queue, self._in_queue
        append = queue.append
        for cid in self._var_linears[var]:
            if cid != skip_cid and not in_queue[cid]:
                in_queue[cid] = 1
                append(cid)
        base = self.n_linears
        for iid in self._var_implications[var]:
            cid = base + iid
            if cid != skip_cid and not in_queue[cid]:
                in_queue[cid] = 1
                append(cid)

    def _drain(self, trail: Trail, stats: PropagationStats) -> bool:
        queue, in_queue = self._queue, self._in_queue
        linears = self.model.linears
        implications = self.model.implications
        n_linears = self.n_linears
        ok = True
        while queue:
            if len(queue) > stats.queue_peak:
                stats.queue_peak = len(queue)
            cid = queue.popleft()
            in_queue[cid] = 0
            if cid < n_linears:
                ok = self._prop_linear(cid, linears[cid], trail, stats)
            else:
                ok = self._prop_implication(cid, implications[cid - n_linears], trail, stats)
            if not ok:
                break
        if not ok:
            # Leave the propagator clean for the next search node.
            while queue:
                in_queue[queue.popleft()] = 0
        return ok

    def _prop_linear(self, cid: int, con, trail: Trail, stats: PropagationStats) -> bool:
        lo, hi = trail.domains.lo, trail.domains.hi
        terms = con.terms
        con_lo, con_hi = con.lo, con.hi
        set_lo, set_hi = trail.set_lo, trail.set_hi
        enqueue = self._enqueue_watchers
        stats.linear_props += 1
        while True:
            sum_lo = 0
            sum_hi = 0
            for idx, coef in terms:
                sum_lo += coef * lo[idx]
                sum_hi += coef * hi[idx]
            if sum_lo > con_hi or sum_hi < con_lo:
                return False
            changed = False
            for idx, coef in terms:
                rest_lo = sum_lo - coef * lo[idx]
                rest_hi = sum_hi - coef * hi[idx]
                new_hi = (con_hi - rest_lo) // coef
                need = con_lo - rest_hi
                new_lo = -((-need) // coef) if need > 0 else lo[idx]
                if new_hi < hi[idx]:
                    set_hi(idx, new_hi)
                    changed = True
                    stats.tightenings += 1
                    enqueue(idx, cid)
                if new_lo > lo[idx]:
                    set_lo(idx, new_lo)
                    changed = True
                    stats.tightenings += 1
                    enqueue(idx, cid)
                if lo[idx] > hi[idx]:
                    return False
            if not changed:
                return True

    def _prop_implication(self, cid: int, imp, trail: Trail, stats: PropagationStats) -> bool:
        lo, hi = trail.domains.lo, trail.domains.hi
        stats.implication_props += 1
        # cond >= cond_ge guaranteed -> then <= then_ub
        if lo[imp.cond] >= imp.cond_ge and imp.then_ub < hi[imp.then]:
            trail.set_hi(imp.then, imp.then_ub)
            stats.tightenings += 1
            if lo[imp.then] > hi[imp.then]:
                return False
            self._enqueue_watchers(imp.then, cid)
        # then must exceed then_ub -> cond must stay below cond_ge
        if lo[imp.then] > imp.then_ub and hi[imp.cond] >= imp.cond_ge:
            trail.set_hi(imp.cond, imp.cond_ge - 1)
            stats.tightenings += 1
            if lo[imp.cond] > hi[imp.cond]:
                return False
            self._enqueue_watchers(imp.cond, cid)
        return True


def propagate(
    model: CpModel, domains: Domains, *, max_passes: int = 64
) -> Tuple[bool, PropagationStats]:
    """Run full-sweep propagation toward fixpoint (reference engine).

    Returns ``(consistent, stats)``: consistent is False when some domain
    became empty; ``stats.fixpoint_reached`` is False when ``max_passes``
    ran out while bounds were still moving (callers must not treat such a
    truncated run as converged).
    """
    lo, hi = domains.lo, domains.hi
    stats = PropagationStats(fixpoint_reached=False)
    for _ in range(max_passes):
        changed = False

        for con in model.linears:
            stats.linear_props += 1
            # Current bounds of the sum.
            sum_lo = 0
            sum_hi = 0
            for idx, coef in con.terms:
                sum_lo += coef * lo[idx]
                sum_hi += coef * hi[idx]
            if sum_lo > con.hi or sum_hi < con.lo:
                stats.fixpoint_reached = True
                return False, stats
            for idx, coef in con.terms:
                term_lo = coef * lo[idx]
                term_hi = coef * hi[idx]
                rest_lo = sum_lo - term_lo
                rest_hi = sum_hi - term_hi
                # coef * v <= con.hi - rest_lo  ->  v <= floor((con.hi - rest_lo)/coef)
                new_hi = (con.hi - rest_lo) // coef
                # coef * v >= con.lo - rest_hi  ->  v >= ceil((con.lo - rest_hi)/coef)
                need = con.lo - rest_hi
                new_lo = -((-need) // coef) if need > 0 else lo[idx]
                if new_hi < hi[idx]:
                    hi[idx] = new_hi
                    changed = True
                    stats.tightenings += 1
                if new_lo > lo[idx]:
                    lo[idx] = new_lo
                    changed = True
                    stats.tightenings += 1
                if lo[idx] > hi[idx]:
                    stats.fixpoint_reached = True
                    return False, stats

        for imp in model.implications:
            stats.implication_props += 1
            # cond >= cond_ge guaranteed -> then <= then_ub
            if lo[imp.cond] >= imp.cond_ge:
                if imp.then_ub < hi[imp.then]:
                    hi[imp.then] = imp.then_ub
                    changed = True
                    stats.tightenings += 1
                    if lo[imp.then] > hi[imp.then]:
                        stats.fixpoint_reached = True
                        return False, stats
            # then must exceed then_ub -> cond must stay below cond_ge
            if lo[imp.then] > imp.then_ub:
                if hi[imp.cond] >= imp.cond_ge:
                    hi[imp.cond] = imp.cond_ge - 1
                    changed = True
                    stats.tightenings += 1
                    if lo[imp.cond] > hi[imp.cond]:
                        stats.fixpoint_reached = True
                        return False, stats

        if not changed:
            stats.fixpoint_reached = True
            break
    return True, stats


def objective_lower_bound(model: CpModel, domains: Domains) -> int:
    """Optimistic objective value from current bounds (O(objective) re-scan;
    the trail solver maintains this incrementally instead)."""
    total = model.objective_offset
    for idx, coef in model.objective:
        total += coef * (domains.lo[idx] if coef > 0 else domains.hi[idx])
    return total
