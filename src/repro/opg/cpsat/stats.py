"""Solver observability: propagation and search statistics.

Two structs thread through the CP-SAT substrate:

- :class:`PropagationStats` — one fixpoint computation (either a full sweep
  by :func:`repro.opg.cpsat.propagation.propagate` or an incremental
  dirty-queue run).  ``fixpoint_reached`` exposes whether the sweep variant
  exhausted ``max_passes`` without converging, so callers never mistake a
  truncated propagation for a fixpoint.
- :class:`SolverStats` — a whole solve call (nodes/sec, propagations by
  constraint kind, dirty-queue high-water mark, time split between
  propagate / branch / bound).  Carried on
  :class:`~repro.opg.cpsat.model.Solution` and aggregated per window by
  ``opg.lcopg`` into the plan's provenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PropagationStats:
    """Outcome of one propagation run (sweep or incremental)."""

    #: Bound updates applied (lo raised or hi lowered).
    tightenings: int = 0
    #: Linear-constraint evaluations.
    linear_props: int = 0
    #: Implication evaluations.
    implication_props: int = 0
    #: False only when the sweep variant hit ``max_passes`` while bounds
    #: were still moving; the dirty-queue propagator always converges.
    fixpoint_reached: bool = True
    #: Dirty-constraint queue high-water mark (incremental runs only).
    queue_peak: int = 0


@dataclass
class SolverStats:
    """Observability for one ``CpSolver.solve`` (or ``NaiveCpSolver``) call."""

    nodes: int = 0
    #: Total bound tightenings across all propagation runs.
    propagations: int = 0
    #: Constraint evaluations by kind.
    linear_props: int = 0
    implication_props: int = 0
    #: Dirty-queue high-water mark across the solve.
    queue_peak: int = 0
    #: Deepest trail (undo-log) seen — proxy for search depth x activity.
    trail_depth_peak: int = 0
    #: Wall-clock split of the solve loop.
    time_propagate_s: float = 0.0
    time_branch_s: float = 0.0
    time_bound_s: float = 0.0
    wall_time_s: float = 0.0
    #: Propagation runs that stopped before fixpoint (naive sweep only;
    #: always 0 for the trail solver, asserted by its tests).
    fixpoint_incomplete: int = 0

    @property
    def nodes_per_sec(self) -> float:
        return self.nodes / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def absorb(self, prop: PropagationStats) -> None:
        """Fold one propagation run into the solve-level counters."""
        self.propagations += prop.tightenings
        self.linear_props += prop.linear_props
        self.implication_props += prop.implication_props
        if prop.queue_peak > self.queue_peak:
            self.queue_peak = prop.queue_peak
        if not prop.fixpoint_reached:
            self.fixpoint_incomplete += 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (plan provenance, BENCH_solver.json)."""
        return {
            "nodes": self.nodes,
            "propagations": self.propagations,
            "linear_props": self.linear_props,
            "implication_props": self.implication_props,
            "queue_peak": self.queue_peak,
            "trail_depth_peak": self.trail_depth_peak,
            "time_propagate_s": round(self.time_propagate_s, 6),
            "time_branch_s": round(self.time_branch_s, 6),
            "time_bound_s": round(self.time_bound_s, 6),
            "wall_time_s": round(self.wall_time_s, 6),
            "nodes_per_sec": round(self.nodes_per_sec, 1),
            "fixpoint_incomplete": self.fixpoint_incomplete,
        }
