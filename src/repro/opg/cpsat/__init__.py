"""In-repo CP-SAT-style solver: the OR-Tools substitute (DESIGN.md §1)."""

from repro.opg.cpsat.model import (
    CpModel,
    Implication,
    IntVar,
    LinearConstraint,
    ModelIndex,
    Solution,
    SolveStatus,
)
from repro.opg.cpsat.naive import NaiveCpSolver
from repro.opg.cpsat.propagation import Domains, IncrementalPropagator, Trail, propagate
from repro.opg.cpsat.search import CpSolver
from repro.opg.cpsat.stats import PropagationStats, SolverStats

__all__ = [
    "CpModel",
    "Implication",
    "IntVar",
    "LinearConstraint",
    "ModelIndex",
    "Solution",
    "SolveStatus",
    "Domains",
    "Trail",
    "IncrementalPropagator",
    "propagate",
    "CpSolver",
    "NaiveCpSolver",
    "PropagationStats",
    "SolverStats",
]
