"""In-repo CP-SAT-style solver: the OR-Tools substitute (DESIGN.md §1)."""

from repro.opg.cpsat.model import (
    CpModel,
    Implication,
    IntVar,
    LinearConstraint,
    Solution,
    SolveStatus,
)
from repro.opg.cpsat.propagation import Domains, propagate
from repro.opg.cpsat.search import CpSolver

__all__ = [
    "CpModel",
    "Implication",
    "IntVar",
    "LinearConstraint",
    "Solution",
    "SolveStatus",
    "Domains",
    "propagate",
    "CpSolver",
]
