"""Branch-and-bound search for the CP model.

Depth-first search with:

- bounds propagation at every node;
- hint-guided value ordering (try the decision hint, then interval split);
- objective-based pruning against the incumbent;
- a wall-clock time limit returning FEASIBLE with the incumbent (matching
  the paper's Table 4, where large models hit the 150 s limit and report
  FEASIBLE rather than OPTIMAL).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.opg.cpsat.model import CpModel, Solution, SolveStatus
from repro.opg.cpsat.propagation import Domains, objective_lower_bound, propagate


class CpSolver:
    """Configurable branch-and-bound solver."""

    def __init__(self, *, time_limit_s: float = 10.0, max_nodes: int = 2_000_000) -> None:
        self.time_limit_s = time_limit_s
        self.max_nodes = max_nodes

    def solve(self, model: CpModel) -> Solution:
        start = time.perf_counter()
        deadline = start + self.time_limit_s
        root = Domains.from_model(model)
        stats = {"nodes": 0, "props": 0}

        ok, props = propagate(model, root)
        stats["props"] += props
        if not ok:
            return Solution(status=SolveStatus.INFEASIBLE, wall_time_s=time.perf_counter() - start)
        # If an incumbent ever matches the root relaxation bound it is
        # provably optimal — exit without exhausting the plateau.
        root_bound = objective_lower_bound(model, root) if model.objective else None

        best_values: Optional[List[int]] = None
        best_obj: Optional[int] = None
        proven_by_bound = False
        timed_out = False
        node_budget_hit = False

        # Iterative DFS: stack of domain states to explore.
        stack: List[Domains] = [root]
        while stack:
            if time.perf_counter() > deadline:
                timed_out = True
                break
            if stats["nodes"] >= self.max_nodes:
                node_budget_hit = True
                break
            domains = stack.pop()
            stats["nodes"] += 1

            if best_obj is not None and model.objective:
                if objective_lower_bound(model, domains) >= best_obj:
                    continue  # cannot improve

            branch_var = self._select_variable(model, domains)
            if branch_var is None:
                values = domains.assignment()
                obj = model.objective_value(values) if model.objective else 0
                if best_obj is None or obj < best_obj:
                    best_obj = obj
                    best_values = values
                    if not model.objective:
                        break  # satisfaction problem: first solution wins
                    if root_bound is not None and obj <= root_bound:
                        proven_by_bound = True
                        break
                continue

            for child_lo, child_hi in reversed(self._branches(model, domains, branch_var)):
                child = domains.copy()
                child.lo[branch_var] = child_lo
                child.hi[branch_var] = child_hi
                ok, props = propagate(model, child)
                stats["props"] += props
                if ok:
                    stack.append(child)

        wall = time.perf_counter() - start
        if best_values is None:
            status = SolveStatus.UNKNOWN if (timed_out or node_budget_hit) else SolveStatus.INFEASIBLE
            return Solution(status=status, nodes_explored=stats["nodes"], propagations=stats["props"], wall_time_s=wall)
        proven = proven_by_bound or not (timed_out or node_budget_hit)
        status = SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE
        return Solution(
            status=status,
            values=best_values,
            objective=best_obj,
            nodes_explored=stats["nodes"],
            propagations=stats["props"],
            wall_time_s=wall,
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _select_variable(model: CpModel, domains: Domains) -> Optional[int]:
        """Smallest-domain-first over unassigned variables (ties: objective
        variables first so bounding bites early)."""
        obj_vars = {idx for idx, _ in model.objective}
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for idx in range(len(domains.lo)):
            width = domains.hi[idx] - domains.lo[idx]
            if width == 0:
                continue
            key = (0 if idx in obj_vars else 1, width)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx

    @staticmethod
    def _branches(model: CpModel, domains: Domains, idx: int) -> List[Tuple[int, int]]:
        """Branch plan for a variable, hint value first, then interval split.

        Returned in preference order (the caller pushes them reversed onto
        the DFS stack).
        """
        lo, hi = domains.lo[idx], domains.hi[idx]
        hint = model.variables[idx].hint
        branches: List[Tuple[int, int]] = []
        if hint is not None and lo <= hint <= hi:
            branches.append((hint, hint))
            if hint > lo:
                branches.append((lo, hint - 1))
            if hint < hi:
                branches.append((hint + 1, hi))
            return branches
        if hi - lo <= 3:
            return [(v, v) for v in range(lo, hi + 1)]
        mid = (lo + hi) // 2
        return [(lo, mid), (mid + 1, hi)]
