"""Trail-based branch-and-bound search for the CP model.

Depth-first search with:

- ONE mutable domain store plus a :class:`Trail` undo log — entering a
  branch records O(changes) entries and leaving pops them, replacing the
  seed solver's O(vars) ``Domains.copy`` per child node;
- incremental propagation at every node: only the constraints watching the
  branched variable (and transitively affected ones) are re-evaluated,
  via the var→constraint index frozen on the model;
- an incrementally-maintained objective lower bound (updated as bounds
  tighten) for one-comparison pruning against the incumbent;
- hint-guided value ordering (try the decision hint, then interval split);
- a wall-clock time limit returning FEASIBLE with the incumbent (matching
  the paper's Table 4, where large models hit the 150 s limit and report
  FEASIBLE rather than OPTIMAL).

Every solve returns a :class:`SolverStats` on the Solution: nodes/sec,
propagations by constraint kind, dirty-queue high-water mark, and the
time split between propagate / branch / bound.

The seed copy-based solver survives as
:class:`repro.opg.cpsat.naive.NaiveCpSolver` — the differential-test
oracle and the benchmark baseline.
"""

from __future__ import annotations

import random
import time
from typing import Callable, FrozenSet, List, Optional, Tuple

from repro.opg.cpsat.bitset import BitsetState
from repro.opg.cpsat.model import CpModel, Solution, SolveStatus
from repro.opg.cpsat.propagation import Domains, IncrementalPropagator, Trail
from repro.opg.cpsat.stats import PropagationStats, SolverStats

#: Deadline checks happen every ``_TIME_CHECK_MASK + 1`` nodes: a
#: perf_counter call per node is measurable at trail-solver node rates.
_TIME_CHECK_MASK = 31


class CpSolver:
    """Configurable branch-and-bound solver (trail + incremental propagation).

    ``engine`` selects the propagation backend:

    - ``"bitset"`` (default): :class:`repro.opg.cpsat.bitset.BitsetState` —
      packed watcher bitsets, resident constraint sums, unassigned-variable
      bitset branching (this PR);
    - ``"queue"``: the PR-5 dirty-queue :class:`IncrementalPropagator` +
      :class:`Trail`, kept as the A/B baseline and for the engine-toggle
      byte-identity tests.

    Both engines stop every propagation at the same unique bounds fixpoint
    and select identical branching variables, so the search tree — and
    therefore every returned solution — is byte-identical across engines
    whenever the node budget (not wall-clock) is the binding limit.

    ``branching`` selects the variable-selection heuristic: "hint" (the
    production default: smallest domain, objective variables first),
    "constrained" (most-constrained-first by linear-constraint degree), or
    "random" (uniform over unassigned, deterministic under ``seed``).  The
    alternates exist for the portfolio (:mod:`repro.opg.cpsat.portfolio`);
    only "hint" carries the cross-engine byte-identity guarantee.

    ``target_supplier``, when given, is polled for an externally *proven*
    optimal objective value (a portfolio certificate).  It only adds a stop
    condition — once the incumbent reaches the certificate the solve ends,
    OPTIMAL, with exactly the incumbent the un-targeted search would have
    returned (the search never improves past a proven optimum, and no
    pruning decision reads the target, so the explored prefix is identical
    up to the stop point).
    """

    def __init__(
        self,
        *,
        time_limit_s: float = 10.0,
        max_nodes: int = 2_000_000,
        engine: str = "bitset",
        branching: str = "hint",
        seed: int = 0,
        target_supplier: Optional[Callable[[], Optional[int]]] = None,
    ) -> None:
        if engine not in ("bitset", "queue"):
            raise ValueError(f"unknown engine {engine!r}; use 'bitset' or 'queue'")
        if branching not in ("hint", "constrained", "random"):
            raise ValueError(
                f"unknown branching {branching!r}; use 'hint', 'constrained', or 'random'"
            )
        self.time_limit_s = time_limit_s
        self.max_nodes = max_nodes
        self.engine = engine
        self.branching = branching
        self.seed = seed
        self.target_supplier = target_supplier

    def solve(self, model: CpModel) -> Solution:
        start = time.perf_counter()
        deadline = start + self.time_limit_s
        stats = SolverStats()
        index = model.freeze()
        if self.engine == "bitset":
            state = BitsetState(model)
            domains = trail = propagator = state
            select = state.select_variable
        else:
            domains = Domains.from_model(model)
            trail = Trail(domains, obj_coef=index.obj_coef, obj_offset=model.objective_offset)
            propagator = IncrementalPropagator(model)
            select = None
        has_obj = bool(model.objective)

        # One cumulative PropagationStats for the whole solve (allocating
        # per node costs ~10% at trail-solver node rates); folded into the
        # SolverStats once at exit.
        prop_stats = PropagationStats()
        t0 = time.perf_counter()
        ok = propagator.propagate_all(trail, prop_stats)
        stats.time_propagate_s += time.perf_counter() - t0
        if not ok:
            stats.absorb(prop_stats)
            stats.wall_time_s = time.perf_counter() - start
            return Solution(status=SolveStatus.INFEASIBLE, wall_time_s=stats.wall_time_s, stats=stats)
        # If an incumbent ever matches the root relaxation bound it is
        # provably optimal — exit without exhausting the plateau.
        root_bound = trail.lower_bound if has_obj else None

        best_values: Optional[List[int]] = None
        best_obj: Optional[int] = None
        proven_by_bound = False
        timed_out = False
        node_budget_hit = False

        lo, hi = domains.lo, domains.hi
        obj_vars = index.obj_vars
        if self.branching == "constrained":
            degree = [len(ids) for ids in index.var_linears]
            select = lambda: self._select_most_constrained(lo, hi, degree)  # noqa: E731
        elif self.branching == "random":
            rng = random.Random(self.seed)
            select = lambda: self._select_random(lo, hi, rng)  # noqa: E731
        elif select is None:
            select = lambda: self._select_variable(lo, hi, obj_vars)  # noqa: E731
        target: Optional[int] = None
        target_supplier = self.target_supplier
        # Iterative DFS over branch ops.  Each entry restores the trail to
        # ``mark`` (the parent's state) and then applies ``var in
        # [child_lo, child_hi]``; the root sentinel applies nothing.
        stack: List[Tuple[int, int, int, int]] = [(trail.mark(), -1, 0, 0)]
        while stack:
            if stats.nodes >= self.max_nodes:
                node_budget_hit = True
                break
            if (stats.nodes & _TIME_CHECK_MASK) == 0 and time.perf_counter() > deadline:
                timed_out = True
                break
            mark, var, child_lo, child_hi = stack.pop()
            stats.nodes += 1

            if var >= 0:
                t0 = time.perf_counter()
                trail.undo_to(mark)
                if child_lo > lo[var]:
                    trail.set_lo(var, child_lo)
                if child_hi < hi[var]:
                    trail.set_hi(var, child_hi)
                # The trail updated the objective bound as the branch was
                # applied — prune before paying for propagation.
                pruned = best_obj is not None and has_obj and trail.lower_bound >= best_obj
                stats.time_bound_s += time.perf_counter() - t0
                if pruned:
                    propagator.abandon()
                    continue

                t0 = time.perf_counter()
                ok = propagator.propagate_from(trail, (var,), prop_stats)
                stats.time_propagate_s += time.perf_counter() - t0
                if len(trail.entries) > stats.trail_depth_peak:
                    stats.trail_depth_peak = len(trail.entries)
                if not ok:
                    continue

            if best_obj is not None and has_obj and trail.lower_bound >= best_obj:
                continue  # cannot improve

            t0 = time.perf_counter()
            branch_var = select()
            if branch_var is None:
                stats.time_branch_s += time.perf_counter() - t0
                values = list(lo)
                obj = model.objective_value(values) if has_obj else 0
                if best_obj is None or obj < best_obj:
                    best_obj = obj
                    best_values = values
                    if not has_obj:
                        break  # satisfaction problem: first solution wins
                    if root_bound is not None and obj <= root_bound:
                        proven_by_bound = True
                        break
                    # Portfolio certificate: an alternate proved the optimum.
                    # Polled only at incumbent updates — the target never
                    # steers pruning or selection, so the tree explored so
                    # far matches the certificate-free search exactly.
                    if target is None and target_supplier is not None:
                        target = target_supplier()
                    if target is not None and obj <= target:
                        proven_by_bound = True
                        break
                continue

            child_mark = trail.mark()
            for b_lo, b_hi in reversed(self._branches(model, domains, branch_var)):
                stack.append((child_mark, branch_var, b_lo, b_hi))
            stats.time_branch_s += time.perf_counter() - t0

        stats.absorb(prop_stats)
        stats.wall_time_s = time.perf_counter() - start
        if best_values is None:
            status = SolveStatus.UNKNOWN if (timed_out or node_budget_hit) else SolveStatus.INFEASIBLE
            return Solution(
                status=status,
                nodes_explored=stats.nodes,
                propagations=stats.propagations,
                wall_time_s=stats.wall_time_s,
                stats=stats,
            )
        # Late certificate: the proof may land after the last incumbent
        # update — one final poll upgrades FEASIBLE to OPTIMAL (values are
        # already the ones the certificate-free search would return).
        if not proven_by_bound and best_obj is not None and target_supplier is not None:
            if target is None:
                target = target_supplier()
            if target is not None and best_obj <= target:
                proven_by_bound = True
        proven = proven_by_bound or not (timed_out or node_budget_hit)
        status = SolveStatus.OPTIMAL if proven else SolveStatus.FEASIBLE
        return Solution(
            status=status,
            values=best_values,
            objective=best_obj,
            nodes_explored=stats.nodes,
            propagations=stats.propagations,
            wall_time_s=stats.wall_time_s,
            stats=stats,
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _select_variable(
        lo: List[int], hi: List[int], obj_vars: FrozenSet[int]
    ) -> Optional[int]:
        """Smallest-domain-first over unassigned variables (ties: objective
        variables first so bounding bites early).  ``obj_vars`` is frozen on
        the model — not rebuilt per node like the seed solver did."""
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[int, int]] = None
        for idx in range(len(lo)):
            width = hi[idx] - lo[idx]
            if width == 0:
                continue
            key = (0 if idx in obj_vars else 1, width)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = idx
        return best_idx

    @staticmethod
    def _select_most_constrained(lo, hi, degree: List[int]) -> Optional[int]:
        """Portfolio alternate: branch on the unassigned variable watched by
        the most linear constraints (ties: lowest index)."""
        best_idx: Optional[int] = None
        best_deg = -1
        for idx in range(len(lo)):
            if hi[idx] > lo[idx] and degree[idx] > best_deg:
                best_deg = degree[idx]
                best_idx = idx
        return best_idx

    @staticmethod
    def _select_random(lo, hi, rng: random.Random) -> Optional[int]:
        """Portfolio alternate: uniform over unassigned (deterministic seed)."""
        open_vars = [idx for idx in range(len(lo)) if hi[idx] > lo[idx]]
        if not open_vars:
            return None
        return rng.choice(open_vars)

    @staticmethod
    def _branches(model: CpModel, domains: Domains, idx: int) -> List[Tuple[int, int]]:
        """Branch plan for a variable, hint value first, then interval split.

        Returned in preference order (the caller pushes them reversed onto
        the DFS stack).
        """
        lo, hi = domains.lo[idx], domains.hi[idx]
        hint = model.variables[idx].hint
        branches: List[Tuple[int, int]] = []
        if hint is not None and lo <= hint <= hi:
            branches.append((hint, hint))
            if hint > lo:
                branches.append((lo, hint - 1))
            if hint < hi:
                branches.append((hint + 1, hi))
            return branches
        if hi - lo <= 3:
            return [(v, v) for v in range(lo, hi + 1)]
        mid = (lo + hi) // 2
        return [(lo, mid), (mid + 1, hi)]
