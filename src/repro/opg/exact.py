"""Exact window prover: close the CP incumbent's optimality gap.

The OPG chunk formulation has a large plateau — the objective depends only
on each weight's *earliest* transform layer (z_w), not on how the remaining
chunks distribute above it — so generic branch-and-bound rarely proves
optimality within budget (the paper's Table 4 reports OPTIMAL only for its
smallest model).  This module exploits the problem's structure to finish
the proof:

- candidate sets are *intervals* of layers ``[i_w - lookback, i_w)``, so
  feasibility of a release-vector (one z per weight) reduces to a
  transportation problem with consecutive-ones structure, decidable exactly
  by an earliest-deadline-first greedy (:func:`edf_feasible`);
- the search enumerates release-vectors in objective order, pruning against
  the incumbent; exhausting the improving space *proves* the incumbent
  optimal.

``prove_window`` is invoked by LC-OPG after the CP search returns a
FEASIBLE incumbent on a modest-sized window; on success the window's status
upgrades to OPTIMAL (and the incumbent may improve).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.opg.heuristics import Budgets
from repro.opg.problem import WeightInfo


def edf_feasible(
    weights: Sequence[WeightInfo],
    releases: Dict[str, int],
    budgets: Budgets,
) -> Optional[Dict[str, Dict[int, int]]]:
    """Pack every weight's chunks into layers >= its release; None if impossible.

    Standard earliest-deadline-first over capacitated slots: walk layers in
    ascending order, at each layer give its remaining capacity to the active
    weights (released, not yet due) with the nearest deadline ``i_w``.  For
    interval-structured availability this greedy is exact.
    """
    if not weights:
        return {}
    lo = min(releases[w.name] for w in weights)
    hi = max(w.consumer_layer for w in weights)
    remaining = {w.name: w.total_chunks for w in weights}
    by_deadline = sorted(weights, key=lambda w: w.consumer_layer)
    assignment: Dict[str, Dict[int, int]] = {w.name: {} for w in weights}
    for layer in range(lo, hi):
        cap = budgets.available(layer)
        if cap <= 0:
            continue
        for w in by_deadline:
            if cap <= 0:
                break
            if remaining[w.name] == 0:
                continue
            if not releases[w.name] <= layer < w.consumer_layer:
                continue
            take = min(cap, remaining[w.name])
            assignment[w.name][layer] = take
            remaining[w.name] -= take
            cap -= take
    if any(remaining.values()):
        return None
    return assignment


def _objective(weights: Sequence[WeightInfo], assignment: Dict[str, Dict[int, int]]) -> int:
    """Total loading distance implied by the actual earliest transforms."""
    return sum(w.consumer_layer - min(assignment[w.name]) for w in weights)


def prove_window(
    weights: Sequence[WeightInfo],
    budgets: Budgets,
    incumbent: Dict[str, Dict[int, int]],
    *,
    time_limit_s: float = 1.0,
    node_limit: int = 50_000,
) -> Tuple[Dict[str, Dict[int, int]], bool]:
    """Prove (or improve) the incumbent's total loading distance.

    Returns ``(best_assignment, proven)``.  The search enumerates release
    vectors weight by weight, latest-first, pruning any prefix whose
    optimistic objective (chosen releases + each remaining weight's solo
    best) cannot beat the best known.  Budgets are only *read*.
    """
    if not weights:
        return dict(incumbent), True
    ordered = sorted(weights, key=lambda w: (w.consumer_layer, w.name))
    # Per-weight solo-optimal release (ignoring the other weights).
    solo_dist: Dict[str, int] = {}
    release_options: Dict[str, List[int]] = {}
    for w in ordered:
        candidates = sorted((l for l in w.candidates if budgets.available(l) > 0), reverse=True)
        if not candidates:
            return dict(incumbent), False  # cannot reason about this window
        release_options[w.name] = candidates
        filled, best = 0, candidates[0]
        for l in candidates:
            filled += budgets.available(l)
            best = l
            if filled >= w.total_chunks:
                break
        solo_dist[w.name] = w.consumer_layer - best
    suffix_solo = [0] * (len(ordered) + 1)
    for i in range(len(ordered) - 1, -1, -1):
        suffix_solo[i] = suffix_solo[i + 1] + solo_dist[ordered[i].name]

    best_assignment = dict(incumbent)
    best_obj = _objective(ordered, incumbent)
    deadline = time.perf_counter() + time_limit_s
    nodes = 0
    exhausted = True

    releases: Dict[str, int] = {}

    def search(index: int, dist_so_far: int) -> None:
        nonlocal nodes, best_obj, best_assignment, exhausted
        if not exhausted:
            return
        nodes += 1
        if nodes > node_limit or time.perf_counter() > deadline:
            exhausted = False
            return
        if dist_so_far + suffix_solo[index] >= best_obj:
            return  # cannot beat the incumbent
        if index == len(ordered):
            packed = edf_feasible(ordered, releases, budgets)
            if packed is not None:
                obj = _objective(ordered, packed)
                if obj < best_obj:
                    best_obj = obj
                    best_assignment = packed
            return
        w = ordered[index]
        for release in release_options[w.name]:
            releases[w.name] = release
            search(index + 1, dist_so_far + (w.consumer_layer - release))
            if not exhausted:
                break
        releases.pop(w.name, None)

    search(0, 0)
    return best_assignment, exhausted
