"""Exact window prover: close the CP incumbent's optimality gap.

The OPG chunk formulation has a large plateau — the objective depends only
on each weight's *earliest* transform layer (z_w), not on how the remaining
chunks distribute above it — so generic branch-and-bound rarely proves
optimality within budget (the paper's Table 4 reports OPTIMAL only for its
smallest model).  This module exploits the problem's structure to finish
the proof:

- candidate sets are *intervals* of layers ``[i_w - lookback, i_w)``, so
  feasibility of a release-vector (one z per weight) reduces to a
  transportation problem with consecutive-ones structure, decidable exactly
  by an earliest-deadline-first greedy (:func:`edf_feasible`);
- the search enumerates release-vectors in objective order, pruning against
  the incumbent; exhausting the improving space *proves* the incumbent
  optimal.

``prove_window`` is invoked by LC-OPG after the CP search returns a
FEASIBLE incumbent on a modest-sized window; on success the window's status
upgrades to OPTIMAL (and the incumbent may improve).

Two engines implement the same mathematics:

- the **fast** engine (default, this PR) packs *weight-major*: weights in
  deadline order each take the earliest available capacity at or after
  their release.  For interval availability this is provably identical to
  the layer-major EDF sweep (peel the earliest-deadline weight: it wins
  every contested slot in its window under either rule, and the residual
  instance recurses).  Weight-major packing vectorises over numpy
  prefix-capacity arrays, and — crucially — it is *incremental*: the
  release-vector search packs one weight per node with O(segment) undo
  (:class:`_EdfPacker`), so an infeasible prefix prunes its whole subtree
  instead of being rediscovered at every descendant leaf.
- the **reference** engine is the seed implementation, kept verbatim
  (:func:`edf_feasible_reference`, :func:`prove_window_reference`) as the
  differential-test oracle and the pre-PR baseline for the compile-latency
  A/B bench — the same pattern as ``cpsat.naive``.

Both engines return identical packings; ``tests/opg/test_exact_differential``
checks this on randomized instances.  They may differ only in *node
accounting* when ``node_limit``/``time_limit_s`` interrupt the search,
because subtree pruning visits fewer nodes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.opg.heuristics import Budgets
from repro.opg.problem import WeightInfo


def edf_feasible(
    weights: Sequence[WeightInfo],
    releases: Dict[str, int],
    budgets: Budgets,
) -> Optional[Dict[str, Dict[int, int]]]:
    """Pack every weight's chunks into layers >= its release; None if impossible.

    Weight-major EDF on a numpy prefix-capacity array: weights in deadline
    order each fill the earliest remaining capacity of ``[release, i_w)``.
    Produces exactly the packing of :func:`edf_feasible_reference`.
    """
    if not weights:
        return {}
    lo = min(releases[w.name] for w in weights)
    hi = max(w.consumer_layer for w in weights)
    avail = np.array(budgets.available_range(lo, hi), dtype=np.int64)
    assignment: Dict[str, Dict[int, int]] = {w.name: {} for w in weights}
    for w in sorted(weights, key=lambda w: w.consumer_layer):
        if w.total_chunks == 0:
            continue
        seg = avail[releases[w.name] - lo : w.consumer_layer - lo]
        if seg.size == 0:
            return None
        prefix = np.cumsum(seg)
        if int(prefix[-1]) < w.total_chunks:
            return None
        fill = int(np.searchsorted(prefix, w.total_chunks))
        take = seg[: fill + 1].copy()
        take[fill] -= int(prefix[fill]) - w.total_chunks
        seg[: fill + 1] -= take
        base = releases[w.name]
        assignment[w.name] = {base + int(i): int(take[i]) for i in np.nonzero(take)[0]}
    return assignment


def edf_feasible_reference(
    weights: Sequence[WeightInfo],
    releases: Dict[str, int],
    budgets: Budgets,
) -> Optional[Dict[str, Dict[int, int]]]:
    """Seed layer-major EDF sweep, kept as the differential-test oracle.

    Standard earliest-deadline-first over capacitated slots: walk layers in
    ascending order, at each layer give its remaining capacity to the active
    weights (released, not yet due) with the nearest deadline ``i_w``.  For
    interval-structured availability this greedy is exact.
    """
    if not weights:
        return {}
    lo = min(releases[w.name] for w in weights)
    hi = max(w.consumer_layer for w in weights)
    remaining = {w.name: w.total_chunks for w in weights}
    by_deadline = sorted(weights, key=lambda w: w.consumer_layer)
    assignment: Dict[str, Dict[int, int]] = {w.name: {} for w in weights}
    for layer in range(lo, hi):
        cap = budgets.available(layer)
        if cap <= 0:
            continue
        for w in by_deadline:
            if cap <= 0:
                break
            if remaining[w.name] == 0:
                continue
            if not releases[w.name] <= layer < w.consumer_layer:
                continue
            take = min(cap, remaining[w.name])
            assignment[w.name][layer] = take
            remaining[w.name] -= take
            cap -= take
    if any(remaining.values()):
        return None
    return assignment


class _EdfPacker:
    """Incremental weight-major EDF packing over one window's availability.

    ``push`` packs one weight earliest-first from its release and records the
    takes for O(segment) undo via ``pop``; a failed ``push`` leaves the
    availability untouched.  After pushing weights 0..k in deadline order the
    internal state equals the EDF packing of that prefix, so a failed push
    proves every completion of the prefix infeasible.
    """

    def __init__(self, lo: int, hi: int, budgets: Budgets) -> None:
        self.lo = lo
        self.avail = budgets.available_range(lo, hi)
        self._stack: List[Tuple[WeightInfo, List[Tuple[int, int]]]] = []

    def push(self, w: WeightInfo, release: int) -> bool:
        avail = self.avail
        remaining = w.total_chunks
        takes: List[Tuple[int, int]] = []
        for i in range(release - self.lo, w.consumer_layer - self.lo):
            cap = avail[i]
            if cap <= 0:
                continue
            take = cap if cap < remaining else remaining
            avail[i] = cap - take
            takes.append((i, take))
            remaining -= take
            if remaining == 0:
                break
        if remaining:
            for i, take in takes:
                avail[i] += take
            return False
        self._stack.append((w, takes))
        return True

    def pop(self) -> None:
        _, takes = self._stack.pop()
        for i, take in takes:
            self.avail[i] += take

    def objective(self) -> int:
        """Total loading distance of the currently-packed weights."""
        lo = self.lo
        return sum(w.consumer_layer - lo - takes[0][0] for w, takes in self._stack)

    def materialize(self) -> Dict[str, Dict[int, int]]:
        lo = self.lo
        return {w.name: {lo + i: take for i, take in takes} for w, takes in self._stack}


def _objective(weights: Sequence[WeightInfo], assignment: Dict[str, Dict[int, int]]) -> int:
    """Total loading distance implied by the actual earliest transforms."""
    return sum(w.consumer_layer - min(assignment[w.name]) for w in weights)


def _release_search_prep(
    ordered: Sequence[WeightInfo], budgets: Budgets
) -> Optional[Tuple[Dict[str, List[int]], List[int]]]:
    """Per-weight release options (latest-first) and the solo-distance
    suffix bound shared by both prover engines; None when some weight has no
    feasible release to reason about."""
    solo_dist: Dict[str, int] = {}
    release_options: Dict[str, List[int]] = {}
    for w in ordered:
        candidates = sorted((l for l in w.candidates if budgets.available(l) > 0), reverse=True)
        if not candidates:
            return None  # cannot reason about this window
        release_options[w.name] = candidates
        filled, best = 0, candidates[0]
        for l in candidates:
            filled += budgets.available(l)
            best = l
            if filled >= w.total_chunks:
                break
        solo_dist[w.name] = w.consumer_layer - best
    suffix_solo = [0] * (len(ordered) + 1)
    for i in range(len(ordered) - 1, -1, -1):
        suffix_solo[i] = suffix_solo[i + 1] + solo_dist[ordered[i].name]
    return release_options, suffix_solo


def prove_window(
    weights: Sequence[WeightInfo],
    budgets: Budgets,
    incumbent: Dict[str, Dict[int, int]],
    *,
    time_limit_s: float = 1.0,
    node_limit: int = 50_000,
    engine: str = "fast",
) -> Tuple[Dict[str, Dict[int, int]], bool]:
    """Prove (or improve) the incumbent's total loading distance.

    Returns ``(best_assignment, proven)``.  The search enumerates release
    vectors weight by weight, latest-first, pruning any prefix whose
    optimistic objective (chosen releases + each remaining weight's solo
    best) cannot beat the best known — and, with the fast engine, any prefix
    whose incremental EDF packing already fails.  Budgets are only *read*.
    """
    if engine == "reference":
        return prove_window_reference(
            weights, budgets, incumbent, time_limit_s=time_limit_s, node_limit=node_limit
        )
    if not weights:
        return dict(incumbent), True
    ordered = sorted(weights, key=lambda w: (w.consumer_layer, w.name))
    prep = _release_search_prep(ordered, budgets)
    if prep is None:
        return dict(incumbent), False
    release_options, suffix_solo = prep
    lo = min(opts[-1] for opts in release_options.values())
    hi = max(w.consumer_layer for w in ordered)
    packer = _EdfPacker(lo, hi, budgets)

    best_assignment = dict(incumbent)
    best_obj = _objective(ordered, incumbent)
    deadline = time.perf_counter() + time_limit_s
    nodes = 0
    exhausted = True

    def search(index: int, dist_so_far: int) -> None:
        nonlocal nodes, best_obj, best_assignment, exhausted
        if not exhausted:
            return
        nodes += 1
        if nodes > node_limit or time.perf_counter() > deadline:
            exhausted = False
            return
        if dist_so_far + suffix_solo[index] >= best_obj:
            return  # cannot beat the incumbent
        if index == len(ordered):
            obj = packer.objective()
            if obj < best_obj:
                best_obj = obj
                best_assignment = packer.materialize()
            return
        w = ordered[index]
        for release in release_options[w.name]:
            if packer.push(w, release):
                search(index + 1, dist_so_far + (w.consumer_layer - release))
                packer.pop()
            if not exhausted:
                break

    search(0, 0)
    return best_assignment, exhausted


def prove_window_reference(
    weights: Sequence[WeightInfo],
    budgets: Budgets,
    incumbent: Dict[str, Dict[int, int]],
    *,
    time_limit_s: float = 1.0,
    node_limit: int = 50_000,
) -> Tuple[Dict[str, Dict[int, int]], bool]:
    """Seed release-vector search (full EDF re-pack at every leaf), kept as
    the pre-PR baseline for differential tests and the compile-latency A/B."""
    if not weights:
        return dict(incumbent), True
    ordered = sorted(weights, key=lambda w: (w.consumer_layer, w.name))
    prep = _release_search_prep(ordered, budgets)
    if prep is None:
        return dict(incumbent), False
    release_options, suffix_solo = prep

    best_assignment = dict(incumbent)
    best_obj = _objective(ordered, incumbent)
    deadline = time.perf_counter() + time_limit_s
    nodes = 0
    exhausted = True

    releases: Dict[str, int] = {}

    def search(index: int, dist_so_far: int) -> None:
        nonlocal nodes, best_obj, best_assignment, exhausted
        if not exhausted:
            return
        nodes += 1
        if nodes > node_limit or time.perf_counter() > deadline:
            exhausted = False
            return
        if dist_so_far + suffix_solo[index] >= best_obj:
            return  # cannot beat the incumbent
        if index == len(ordered):
            packed = edf_feasible_reference(ordered, releases, budgets)
            if packed is not None:
                obj = _objective(ordered, packed)
                if obj < best_obj:
                    best_obj = obj
                    best_assignment = packed
            return
        w = ordered[index]
        for release in release_options[w.name]:
            releases[w.name] = release
            search(index + 1, dist_so_far + (w.consumer_layer - release))
            if not exhausted:
                break
        releases.pop(w.name, None)

    search(0, 0)
    return best_assignment, exhausted
