"""Overlap plan: the artifact the LC-OPG solver produces (paper §3).

A plan tells the runtime, for every weight:

- whether it is *preloaded* (in the set W — loaded and transformed by
  dedicated data-loading kernels before execution starts);
- otherwise, at which layer its disk -> unified-memory load is issued
  (``z_w``) and how many chunks each earlier layer transforms into texture
  memory (``x_{w, l}``), including byte offsets for each segment.

Plans are produced offline, are model+device specific, and are reusable —
the runtime only reads them (paper: "incurs no runtime overhead").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class TransformSegment:
    """A contiguous byte range of one weight transformed at one layer."""

    layer: int
    chunks: int
    start_offset: int
    end_offset: int


@dataclass
class WeightSchedule:
    """Complete loading schedule of one weight."""

    weight: str
    nbytes: int
    consumer_layer: int  # i_w: first (and in this IR only) consuming layer
    preloaded: bool
    #: z_w: layer at whose start the disk load is issued (-1 when preloaded).
    load_layer: int = -1
    #: layer index -> chunk count transformed while that layer computes.
    transforms: Dict[int, int] = field(default_factory=dict)
    chunk_bytes: int = 0
    total_chunks: int = 0
    #: Conv weights: streamed from disk but transformed by a dedicated
    #: (non-overlapped) Winograd kernel at the consumer (paper §5.2/§5.4).
    dedicated_transform: bool = False

    @property
    def loading_distance(self) -> int:
        """i_w - z_w (paper's residency proxy); 0 for preloaded weights."""
        if self.preloaded or self.load_layer < 0:
            return 0
        return self.consumer_layer - self.load_layer

    @property
    def streamed_chunks(self) -> int:
        return sum(self.transforms.values())

    def segments(self) -> List[TransformSegment]:
        """Byte segments per transforming layer, in layer order.

        This is the "mapping that specifies which weight segments will be
        preloaded ... along with their corresponding start and end offsets"
        from §3.2.
        """
        out: List[TransformSegment] = []
        offset = 0
        for layer in sorted(self.transforms):
            chunks = self.transforms[layer]
            nbytes = min(chunks * self.chunk_bytes, self.nbytes - offset)
            out.append(
                TransformSegment(
                    layer=layer, chunks=chunks, start_offset=offset, end_offset=offset + nbytes
                )
            )
            offset += nbytes
        return out


@dataclass
class KvResidencyPlan:
    """Residency schedule for the decode-phase KV caches (one per model).

    Weights get a per-weight schedule above; KV caches get one shared policy
    because they all grow in lockstep (one appended row pair per layer per
    token).  The planner grants the caches a byte budget out of whatever RAM
    the weight plan left free, converts it to a per-layer cap of
    ``resident_tiles`` attention tiles, and the runtime keeps the *most
    recent* tiles resident — older tiles spill to disk and are re-streamed
    through the tiled attention kernel (priced by
    :class:`repro.gpusim.kernels.FlashAttentionKernel`).

    Per-token decode cost is piecewise-constant between *context-length
    breakpoints* (tile boundaries); :meth:`breakpoints` enumerates them so
    the executor can extrapolate within each segment.
    """

    #: K/V tokens per attention tile (uniform across the graph's caches).
    tile_tokens: int
    #: Byte budget granted to resident KV state across all caches.
    budget_bytes: int
    #: Max tiles of each cache kept resident (>= 1: the hot tile that
    #: receives appends can never spill mid-write).
    resident_tiles: int
    #: Whether resident tiles live in texture memory (fast path) or plain
    #: unified memory (UM_KV_BW_FACTOR-degraded reads).
    texture: bool
    #: Bytes appended across all caches per decoded token.
    token_bytes: int
    #: Number of per-layer caches sharing the policy.
    caches: int

    def tiles_at(self, kv_tokens: int) -> int:
        """Tiles covering ``kv_tokens`` cached rows (per cache)."""
        if kv_tokens <= 0:
            raise ValueError("kv_tokens must be positive")
        return -(-kv_tokens // self.tile_tokens)

    def resident_tiles_at(self, kv_tokens: int) -> int:
        """Resident tiles (per cache) once ``kv_tokens`` rows are cached."""
        return min(self.tiles_at(kv_tokens), self.resident_tiles)

    def resident_bytes_at(self, kv_tokens: int) -> int:
        """Total resident KV bytes across all caches at ``kv_tokens`` rows.

        Below the cap this is the exact cache content; at the cap it is the
        capped tile footprint (the hot tile is accounted full, as allocated).
        """
        cap_tokens = self.resident_tiles * self.tile_tokens
        return min(kv_tokens, cap_tokens) * self.token_bytes

    def breakpoints(self, context_len: int, tokens: int) -> List[int]:
        """Token indices (0-based, within the generation) where per-token
        attention cost changes: the tile-boundary crossings of the growing
        cache.  Always starts at 0; segment ``i`` spans
        ``[breakpoints[i], breakpoints[i+1])`` (or to ``tokens``).
        """
        if tokens <= 0:
            return []
        out = [0]
        t = 0
        while True:
            # Next token index at which tiles(context_len + t + 1) changes.
            kv = context_len + t + 1
            boundary = self.tiles_at(kv) * self.tile_tokens  # kv count filling the tile
            nxt = boundary - context_len  # token index whose kv exceeds it
            if nxt >= tokens:
                break
            out.append(nxt)
            t = nxt
        return out


@dataclass
class PlanStats:
    """Provenance of a plan: solver timings and fallback activity."""

    process_nodes_s: float = 0.0
    build_model_s: float = 0.0
    solve_s: float = 0.0
    solver_status: str = "UNKNOWN"
    windows: int = 0
    cp_windows: int = 0
    heuristic_windows: int = 0
    #: Windows replayed from the solver's cross-solve window cache instead
    #: of being re-solved (adaptive-fusion iterations leave most windows
    #: byte-identical; see DESIGN.md "compile-path performance").
    windows_reused: int = 0
    soft_threshold_rounds: int = 0
    incremental_preloads: int = 0
    nodes_explored: int = 0
    # ---- compile-phase wall-clock split (complements build/solve above) ----
    #: Time inside the CP engine's branch-and-bound (`CpSolver.solve`).
    cp_solve_s: float = 0.0
    #: Time inside the exact release-vector prover (`prove_window`).
    exact_prover_s: float = 0.0
    #: Time inside the greedy fallback tier and the long-range rescue pass.
    greedy_s: float = 0.0
    #: EDF oracle invocations (packability checks + CP hints + prover).
    edf_calls: int = 0
    # ---- solver observability (aggregated over CP windows) ----
    #: Total bound tightenings across all CP solves.
    propagations: int = 0
    #: Constraint evaluations by kind.
    prop_linear: int = 0
    prop_implication: int = 0
    #: Dirty-constraint queue high-water mark across windows.
    queue_peak: int = 0
    #: Wall-clock split of the CP search loops.
    time_propagate_s: float = 0.0
    time_branch_s: float = 0.0
    time_bound_s: float = 0.0
    #: Per-CP-solve observability dicts (window id, status, nodes/sec, ...).
    window_stats: List[Dict[str, object]] = field(default_factory=list)

    @property
    def nodes_per_sec(self) -> float:
        """Aggregate search throughput over the CP windows' solve time."""
        wall = sum(float(w.get("wall_time_s", 0.0)) for w in self.window_stats)
        return self.nodes_explored / wall if wall > 0 else 0.0


@dataclass
class OverlapPlan:
    """The full per-model schedule consumed by the FlashMem runtime."""

    model: str
    device: str
    chunk_bytes: int
    m_peak_bytes: int
    schedules: Dict[str, WeightSchedule]
    stats: PlanStats = field(default_factory=PlanStats)
    #: Decode-phase KV residency policy; None for prefill-only graphs (and
    #: for plans serialized before KV planning existed).
    kv_plan: Optional[KvResidencyPlan] = None

    # --------------------------------------------------------------- queries
    @property
    def preloaded_weights(self) -> List[str]:
        return [name for name, s in self.schedules.items() if s.preloaded]

    @property
    def streamed_weights(self) -> List[str]:
        return [name for name, s in self.schedules.items() if not s.preloaded]

    @property
    def preload_bytes(self) -> int:
        return sum(s.nbytes for s in self.schedules.values() if s.preloaded)

    @property
    def streamed_bytes(self) -> int:
        return sum(s.nbytes for s in self.schedules.values() if not s.preloaded)

    @property
    def total_bytes(self) -> int:
        return self.preload_bytes + self.streamed_bytes

    @property
    def preload_ratio(self) -> float:
        total = self.total_bytes
        return self.preload_bytes / total if total else 0.0

    def transforms_at(self, layer: int) -> List[Tuple[str, int]]:
        """(weight, chunks) pairs transformed while ``layer`` computes."""
        out = []
        for name, s in self.schedules.items():
            if layer in s.transforms:
                out.append((name, s.transforms[layer]))
        return out

    def loads_at(self, layer: int) -> List[str]:
        """Weights whose disk load is issued at the start of ``layer``."""
        return [
            name
            for name, s in self.schedules.items()
            if not s.preloaded and s.load_layer == layer
        ]

    # ----------------------------------------------------------- persistence
    def to_json(self) -> str:
        payload = {
            "model": self.model,
            "device": self.device,
            "chunk_bytes": self.chunk_bytes,
            "m_peak_bytes": self.m_peak_bytes,
            "stats": asdict(self.stats),
            "kv_plan": asdict(self.kv_plan) if self.kv_plan is not None else None,
            "schedules": {
                name: {
                    **asdict(s),
                    "transforms": {str(k): v for k, v in s.transforms.items()},
                }
                for name, s in self.schedules.items()
            },
        }
        return json.dumps(payload, indent=2)

    def canonical_json(self) -> str:
        """Deterministic serialization of everything the runtime consumes.

        ``stats`` is provenance (wall-clock solver timings, node counts) and
        is excluded: two compiles of the same (model, device, config) produce
        identical canonical JSON even though their timings differ.  This is
        the byte-identity contract the cache and the plan-compilation
        service are checked against — a served plan must be canonically
        byte-identical to a direct ``FlashMem.compile`` of the same request.
        """
        payload = json.loads(self.to_json())
        payload.pop("stats", None)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "OverlapPlan":
        payload = json.loads(text)
        schedules = {}
        for name, raw in payload["schedules"].items():
            raw = dict(raw)
            raw["transforms"] = {int(k): v for k, v in raw["transforms"].items()}
            schedules[name] = WeightSchedule(**raw)
        return cls(
            model=payload["model"],
            device=payload["device"],
            chunk_bytes=payload["chunk_bytes"],
            m_peak_bytes=payload["m_peak_bytes"],
            schedules=schedules,
            stats=PlanStats(**payload["stats"]),
            # .get: plans serialized before KV planning have no such key.
            kv_plan=(
                KvResidencyPlan(**payload["kv_plan"])
                if payload.get("kv_plan") is not None
                else None
            ),
        )
